type result = {
  simplified : Cnf.t;
  reconstruct : bool array -> bool array;
  eliminated_vars : int;
  subsumed_clauses : int;
  strengthened_clauses : int;
}

module LitSet = Set.Make (Lit)

(* Working representation: a growable store of live clauses as literal
   sets, plus occurrence lists per literal. *)
type state = {
  mutable clauses : LitSet.t option array; (* None = removed *)
  mutable n_clauses : int;
  occ : (Lit.t, int list ref) Hashtbl.t; (* literal -> clause indices (may be stale) *)
  mutable subsumed : int;
  mutable strengthened : int;
}

let occ_list st l =
  match Hashtbl.find_opt st.occ l with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace st.occ l r;
    r

let add_clause st set =
  if st.n_clauses = Array.length st.clauses then begin
    let bigger = Array.make (max 16 (2 * st.n_clauses)) None in
    Array.blit st.clauses 0 bigger 0 st.n_clauses;
    st.clauses <- bigger
  end;
  let idx = st.n_clauses in
  st.clauses.(idx) <- Some set;
  st.n_clauses <- st.n_clauses + 1;
  LitSet.iter (fun l -> occ_list st l := idx :: !(occ_list st l)) set

let live_occurrences st l =
  let r = occ_list st l in
  let live =
    List.filter
      (fun i -> match st.clauses.(i) with Some s -> LitSet.mem l s | None -> false)
      !r
  in
  r := live;
  live

let tautology set = LitSet.exists (fun l -> LitSet.mem (Lit.negate l) set) set

(* ------------------------------------------------------------------ *)
(* Subsumption and self-subsuming resolution.                          *)
(* ------------------------------------------------------------------ *)

(* For every clause C, find the clauses D ⊇ C (via the occurrence list of
   C's rarest literal) and remove them; and for each literal l of C, if
   C[l := ¬l] ⊆ D then D can drop ¬l. *)
let subsumption_round st =
  let changed = ref false in
  for ci = 0 to st.n_clauses - 1 do
    match st.clauses.(ci) with
    | None -> ()
    | Some c ->
      if not (LitSet.is_empty c) then begin
        (* plain subsumption: candidates must contain c's first literal *)
        let pivot =
          LitSet.fold
            (fun l best ->
              match best with
              | None -> Some l
              | Some b ->
                if List.length (live_occurrences st l) < List.length (live_occurrences st b)
                then Some l
                else best)
            c None
        in
        (match pivot with
        | None -> ()
        | Some p ->
          List.iter
            (fun di ->
              if di <> ci then
                match st.clauses.(di) with
                | Some d when LitSet.subset c d ->
                  st.clauses.(di) <- None;
                  st.subsumed <- st.subsumed + 1;
                  changed := true
                | Some _ | None -> ())
            (live_occurrences st p));
        (* self-subsuming resolution: for l ∈ c, look at clauses containing
           ¬l that include c \ {l}; they lose ¬l *)
        LitSet.iter
          (fun l ->
            let rest = LitSet.remove l c in
            List.iter
              (fun di ->
                if di <> ci then
                  match st.clauses.(di) with
                  | Some d when LitSet.mem (Lit.negate l) d && LitSet.subset rest d ->
                    let d' = LitSet.remove (Lit.negate l) d in
                    st.clauses.(di) <- None;
                    st.strengthened <- st.strengthened + 1;
                    add_clause st d';
                    changed := true
                  | Some _ | None -> ())
              (live_occurrences st (Lit.negate l)))
          c
      end
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Bounded variable elimination.                                       *)
(* ------------------------------------------------------------------ *)

let eliminate_round st ~num_vars ~max_occurrences ~frozen saved order =
  let changed = ref false in
  for v = 0 to num_vars - 1 do
    if (not (Hashtbl.mem saved v)) && not (frozen v) then begin
      let pos = live_occurrences st (Lit.pos v) in
      let neg = live_occurrences st (Lit.neg v) in
      let np = List.length pos and nn = List.length neg in
      if np + nn > 0 && np <= max_occurrences && nn <= max_occurrences then begin
        let clause_of i = Option.get st.clauses.(i) in
        let resolvents =
          List.concat_map
            (fun pi ->
              List.filter_map
                (fun ni ->
                  let r =
                    LitSet.union
                      (LitSet.remove (Lit.pos v) (clause_of pi))
                      (LitSet.remove (Lit.neg v) (clause_of ni))
                  in
                  if tautology r then None else Some r)
                neg)
            pos
        in
        if List.length resolvents <= np + nn then begin
          (* record the removed occurrences for model reconstruction *)
          Hashtbl.replace saved v (List.map clause_of pos, List.map clause_of neg);
          order := v :: !order;
          List.iter (fun i -> st.clauses.(i) <- None) pos;
          List.iter (fun i -> st.clauses.(i) <- None) neg;
          List.iter (add_clause st) resolvents;
          changed := true
        end
      end
    end
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let preprocess ?(max_occurrences = 10) ?(rounds = 3) ?(frozen = []) cnf =
  let num_vars = Cnf.num_vars cnf in
  let frozen_tbl = Hashtbl.create (max 16 (List.length frozen)) in
  List.iter (fun v -> Hashtbl.replace frozen_tbl v ()) frozen;
  let frozen v = Hashtbl.mem frozen_tbl v in
  let st =
    {
      clauses = Array.make (max 16 (Cnf.num_clauses cnf)) None;
      n_clauses = 0;
      occ = Hashtbl.create 256;
      subsumed = 0;
      strengthened = 0;
    }
  in
  Cnf.iter_clauses
    (fun _ c ->
      let set = LitSet.of_list (Array.to_list c) in
      if not (tautology set) then add_clause st set)
    cnf;
  (* eliminated variable -> (positive occurrences, negative occurrences),
     in insertion order of elimination via a list of vars *)
  let saved : (Lit.var, LitSet.t list * LitSet.t list) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  (* [order] holds eliminated variables most-recent-first, which is the
     order reconstruction must fix them in *)
  let round () =
    let s = subsumption_round st in
    let e = eliminate_round st ~num_vars ~max_occurrences ~frozen saved order in
    s || e
  in
  let rec iterate n = if n > 0 && round () then iterate (n - 1) in
  iterate rounds;
  let simplified = Cnf.create ~num_vars () in
  Array.iteri
    (fun _ c ->
      match c with
      | Some set -> Cnf.add_clause simplified (LitSet.elements set)
      | None -> ())
    (Array.sub st.clauses 0 st.n_clauses);
  let elimination_order = !order (* most recently eliminated first *) in
  let reconstruct model =
    let m = Array.make num_vars false in
    Array.blit model 0 m 0 (min (Array.length model) num_vars);
    (* fix eliminated variables most-recent-first: when v was eliminated,
       the remaining formula contained no occurrence of v, so later (i.e.
       earlier-eliminated) variables may depend on v's value *)
    List.iter
      (fun v ->
        match Hashtbl.find_opt saved v with
        | None -> ()
        | Some (pos, _neg) ->
          let lit_true l = m.(Lit.var l) = Lit.is_pos l in
          (* v := false satisfies every negative occurrence; it is forced
             true iff some positive occurrence has no other true literal *)
          let forced =
            List.exists
              (fun clause ->
                not (LitSet.exists (fun l -> Lit.var l <> v && lit_true l) clause))
              pos
          in
          m.(v) <- forced)
      elimination_order;
    m
  in
  {
    simplified;
    reconstruct;
    eliminated_vars = Hashtbl.length saved;
    subsumed_clauses = st.subsumed;
    strengthened_clauses = st.strengthened;
  }
