lib/core/trace.mli: Circuit Format Unroll
