lib/sat/proof.ml: Array Int List Printf Vec
