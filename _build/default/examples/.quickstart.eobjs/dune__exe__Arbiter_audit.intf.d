examples/arbiter_audit.mli:
