lib/core/engine.mli: Circuit Format Sat Score Trace
