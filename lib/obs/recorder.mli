(** Solver flight recorder: a bounded, per-domain, low-overhead event ring.

    A recorder keeps one fixed-size ring of binary events {e per domain}
    that ever records through it (allocated lazily via domain-local
    storage).  Each event is four plain ints — kind, two payload words and
    a microsecond timestamp — so recording is a handful of array stores
    plus one atomic publish: cheap enough to leave on in production, and
    bounded, so a run that spins for hours still holds only the last
    [capacity] events per domain.

    {2 Memory model}

    Each ring has a single writer (its owning domain).  The writer fills a
    slot with plain stores, then publishes by bumping the ring's atomic
    sequence counter (release).  A snapshotting domain reads the counter
    (acquire), copies the live window, and re-reads the counter: any event
    whose slot the writer may since have re-entered — index [<= c2 -
    capacity] — is discarded, so a snapshot never contains a torn event.
    Plain-int races on discarded slots are defined (no tearing per word)
    under the OCaml memory model; the decoder additionally drops any slot
    whose kind word does not decode, as belt and braces.

    Snapshots can be taken at any time from any domain — on demand, from a
    SIGUSR1 handler ({!on_sigusr1}) or an [at_exit] hook — which is what
    makes a wedged portfolio run diagnosable post-mortem. *)

type kind =
  | Restart  (** solver restart; [a] = conflicts so far, [b] = restart no. *)
  | Reduce_db  (** learnt-DB reduction; [a] = clauses removed, [b] = kept *)
  | Compact  (** arena compaction; [a] = bytes before, [b] = bytes after *)
  | Switch  (** dynamic ordering fallback fired; [a] = decisions, [b] = conflicts *)
  | Depth  (** BMC depth solved; [a] = depth, [b] = outcome (0 unsat / 1 sat / 2 unknown) *)
  | Solve  (** one solver call finished; [a] = outcome, [b] = conflicts delta *)
  | Racer_start  (** portfolio racer launched; [a] = depth, [b] = racer slot *)
  | Racer_cancel  (** racer observed cancellation; [a] = depth, [b] = racer slot *)
  | Racer_win  (** racer finished first; [a] = depth, [b] = racer slot *)
  | Share_export  (** clause exported; [a] = LBD, [b] = size *)
  | Share_import  (** clauses imported at level 0; [a] = count, [b] = 0 *)
  | Inprocess
      (** one inprocessing run at a depth boundary; [a] = variables
          eliminated, [b] = clauses subsumed + strengthened *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t

val create : ?capacity:int -> unit -> t
(** A recorder whose per-domain rings hold the last [capacity] (default
    4096) events each.  @raise Invalid_argument if [capacity < 2]. *)

val capacity : t -> int

val record : t -> kind -> a:int -> b:int -> unit
(** Append an event to the calling domain's ring, overwriting the oldest
    once full.  The event is timestamped with wall-clock microseconds
    since {!create}. *)

(** {1 Snapshots} *)

type entry = {
  e_dom : int;  (** recording domain's id *)
  e_seq : int;  (** per-domain sequence number *)
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_t_us : int;  (** microseconds since the recorder was created *)
}

val snapshot : t -> entry list
(** A consistent copy of every domain's surviving events, merged and
    sorted by timestamp (ties: domain, then sequence).  Safe to call from
    any domain while writers are still recording; per-ring, at most one
    in-flight event's worth of history is conservatively dropped. *)

val entry_to_json : entry -> string
(** One JSONL line: [{"dom":..,"seq":..,"ev":"restart","a":..,"b":..,"t_us":..}]. *)

val entry_of_json : string -> (entry, string) result
val entries_of_string : string -> entry list
(** Parse a whole JSONL dump (blank lines ignored).
    @raise Failure on malformed input. *)

val output : t -> out_channel -> unit
(** Write {!snapshot} as JSONL. *)

val dump : t -> string -> unit
(** [dump t path] writes {!snapshot} to [path] (truncating). *)

val on_signal : t -> signal:int -> path:string -> unit
(** Install a handler on [signal] that dumps a snapshot to [path].
    Best-effort: silently a no-op on platforms without that signal.
    Long-lived processes with their own shutdown sequence (the serve
    layer's SIGTERM drain) should instead call {!dump} explicitly once
    quiesced, so the dump is ordered after the last solver event. *)

val on_sigusr1 : t -> path:string -> unit
(** [on_signal] on SIGUSR1 — poke a wedged run with [kill -USR1] to see
    what its solvers are doing. *)
