type node = int

type gate =
  | Input of string
  | Const of bool
  | Not of node
  | And of node * node
  | Or of node * node
  | Xor of node * node
  | Mux of node * node * node
  | Reg of string

type reg_info = {
  init : bool option;
  mutable next : node; (* -1 until connected *)
}

type t = {
  gates : gate array ref;
  mutable len : int;
  names : (string, node) Hashtbl.t;
  canonical : (node, string) Hashtbl.t;
  reg_infos : (node, reg_info) Hashtbl.t;
  hashcons : (gate, node) Hashtbl.t;
  mutable input_order : node list; (* reversed *)
  mutable reg_order : node list; (* reversed *)
}

let create () =
  {
    gates = ref (Array.make 64 (Const false));
    len = 0;
    names = Hashtbl.create 64;
    canonical = Hashtbl.create 64;
    reg_infos = Hashtbl.create 16;
    hashcons = Hashtbl.create 64;
    input_order = [];
    reg_order = [];
  }

let num_nodes t = t.len

let gate t n =
  if n < 0 || n >= t.len then invalid_arg (Printf.sprintf "Netlist.gate: unknown node %d" n);
  !(t.gates).(n)

let push t g =
  if t.len = Array.length !(t.gates) then begin
    let bigger = Array.make (2 * t.len) (Const false) in
    Array.blit !(t.gates) 0 bigger 0 t.len;
    t.gates := bigger
  end;
  !(t.gates).(t.len) <- g;
  t.len <- t.len + 1;
  t.len - 1

let register_name t name n =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Netlist: duplicate name %S" name);
  Hashtbl.replace t.names name n;
  if not (Hashtbl.mem t.canonical n) then Hashtbl.replace t.canonical n name

let input t name =
  let n = push t (Input name) in
  register_name t name n;
  t.input_order <- n :: t.input_order;
  n

let hashconsed t g =
  match Hashtbl.find_opt t.hashcons g with
  | Some n -> n
  | None ->
    let n = push t g in
    Hashtbl.replace t.hashcons g n;
    n

let const_true t = hashconsed t (Const true)

let const_false t = hashconsed t (Const false)

let check_node t n ctx =
  if n < 0 || n >= t.len then invalid_arg (Printf.sprintf "Netlist.%s: unknown node %d" ctx n)

(* Light structural simplification: constants fold, idempotence, double
   negation.  Enough to keep generated circuits tidy without a full AIG
   rewriting pass. *)
let rec not_ t a =
  check_node t a "not_";
  match gate t a with
  | Const b -> if b then const_false t else const_true t
  | Not x -> x
  | Input _ | And _ | Or _ | Xor _ | Mux _ | Reg _ -> hashconsed t (Not a)

and and_ t a b =
  check_node t a "and_";
  check_node t b "and_";
  let a, b = if a <= b then (a, b) else (b, a) in
  match (gate t a, gate t b) with
  | Const false, _ | _, Const false -> const_false t
  | Const true, _ -> b
  | _, Const true -> a
  | _ when a = b -> a
  | _ when is_complement t a b -> const_false t
  | _ -> hashconsed t (And (a, b))

and or_ t a b =
  check_node t a "or_";
  check_node t b "or_";
  let a, b = if a <= b then (a, b) else (b, a) in
  match (gate t a, gate t b) with
  | Const true, _ | _, Const true -> const_true t
  | Const false, _ -> b
  | _, Const false -> a
  | _ when a = b -> a
  | _ when is_complement t a b -> const_true t
  | _ -> hashconsed t (Or (a, b))

and xor_ t a b =
  check_node t a "xor_";
  check_node t b "xor_";
  let a, b = if a <= b then (a, b) else (b, a) in
  match (gate t a, gate t b) with
  | Const false, _ -> b
  | _, Const false -> a
  | Const true, _ -> not_ t b
  | _, Const true -> not_ t a
  | _ when a = b -> const_false t
  | _ when is_complement t a b -> const_true t
  | _ -> hashconsed t (Xor (a, b))

and is_complement t a b =
  match (gate t a, gate t b) with
  | Not x, _ -> x = b
  | _, Not x -> x = a
  | _ -> false

let mux t ~sel ~hi ~lo =
  check_node t sel "mux";
  check_node t hi "mux";
  check_node t lo "mux";
  match gate t sel with
  | Const true -> hi
  | Const false -> lo
  | _ when hi = lo -> hi
  | _ -> hashconsed t (Mux (sel, hi, lo))

let nand_ t a b = not_ t (and_ t a b)

let nor_ t a b = not_ t (or_ t a b)

let xnor_ t a b = not_ t (xor_ t a b)

let implies t a b = or_ t (not_ t a) b

let and_list t = function
  | [] -> const_true t
  | x :: rest -> List.fold_left (and_ t) x rest

let or_list t = function
  | [] -> const_false t
  | x :: rest -> List.fold_left (or_ t) x rest

let reg t ~name ~init =
  let n = push t (Reg name) in
  register_name t name n;
  Hashtbl.replace t.reg_infos n { init; next = -1 };
  t.reg_order <- n :: t.reg_order;
  n

let reg_info t n =
  match Hashtbl.find_opt t.reg_infos n with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Netlist: node %d is not a register" n)

let set_next t r n =
  check_node t n "set_next";
  let info = reg_info t r in
  if info.next >= 0 then invalid_arg "Netlist.set_next: already connected";
  info.next <- n

let reg_init t r = (reg_info t r).init

let reg_next t r =
  let info = reg_info t r in
  if info.next < 0 then invalid_arg "Netlist.reg_next: next input not connected";
  info.next

let inputs t = List.rev t.input_order

let regs t = List.rev t.reg_order

let name_node t name n =
  check_node t n "name_node";
  register_name t name n

let find t name = Hashtbl.find_opt t.names name

let name_of t n = Hashtbl.find_opt t.canonical n

let fanins = function
  | Input _ | Const _ | Reg _ -> []
  | Not a -> [ a ]
  | And (a, b) | Or (a, b) | Xor (a, b) -> [ a; b ]
  | Mux (s, h, l) -> [ s; h; l ]

let validate t =
  let unconnected =
    Hashtbl.fold (fun n info acc -> if info.next < 0 then n :: acc else acc) t.reg_infos []
  in
  match unconnected with
  | n :: _ ->
    Error
      (Printf.sprintf "register %s has no next-state input"
         (Option.value ~default:(string_of_int n) (name_of t n)))
  | [] ->
    (* combinational cycle check: colours 0 = white, 1 = grey, 2 = black *)
    let colour = Array.make (max t.len 1) 0 in
    let cycle = ref None in
    let rec visit n =
      if !cycle = None then
        match colour.(n) with
        | 1 -> cycle := Some n
        | 2 -> ()
        | _ ->
          colour.(n) <- 1;
          List.iter visit (fanins (gate t n));
          colour.(n) <- 2
    in
    for n = 0 to t.len - 1 do
      visit n
    done;
    (match !cycle with
    | Some n ->
      Error
        (Printf.sprintf "combinational cycle through node %s"
           (Option.value ~default:(string_of_int n) (name_of t n)))
    | None -> Ok ())

let transitive_fanin t roots =
  let mark = Array.make (max t.len 1) false in
  let rec visit n =
    if not mark.(n) then begin
      mark.(n) <- true;
      let g = gate t n in
      List.iter visit (fanins g);
      match g with
      | Reg _ -> visit (reg_next t n)
      | Input _ | Const _ | Not _ | And _ | Or _ | Xor _ | Mux _ -> ()
    end
  in
  List.iter visit roots;
  fun n -> n >= 0 && n < t.len && mark.(n)

(* Structural digest: a canonical serialization of the gate array (in
   creation order — node IDs are dense and creation-ordered, so equal
   serializations imply identical node numbering), each register's initial
   value and next-state node, and the names baked into [Input]/[Reg] gates.
   Aliases added with [name_node] are presentation-only and excluded, as is
   the hashcons table (derivable).  Two netlists with equal digests are
   byte-identical structures: every (node, frame) SAT variable key coincides,
   which is what makes digest-keyed clause sharing and warm-session reuse
   sound. *)
let digest t =
  let buf = Buffer.create (64 * t.len) in
  for n = 0 to t.len - 1 do
    (match !(t.gates).(n) with
    | Input s ->
      Buffer.add_char buf 'i';
      Buffer.add_string buf s
    | Const b -> Buffer.add_string buf (if b then "c1" else "c0")
    | Not a -> Printf.bprintf buf "n%d" a
    | And (a, b) -> Printf.bprintf buf "a%d,%d" a b
    | Or (a, b) -> Printf.bprintf buf "o%d,%d" a b
    | Xor (a, b) -> Printf.bprintf buf "x%d,%d" a b
    | Mux (s, h, l) -> Printf.bprintf buf "m%d,%d,%d" s h l
    | Reg s ->
      Buffer.add_char buf 'r';
      Buffer.add_string buf s);
    Buffer.add_char buf '\n'
  done;
  List.iter
    (fun r ->
      let info = reg_info t r in
      Printf.bprintf buf "R%d=%s>%d\n" r
        (match info.init with None -> "x" | Some true -> "1" | Some false -> "0")
        info.next)
    (regs t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_gate ppf = function
  | Input s -> Format.fprintf ppf "input %s" s
  | Const b -> Format.fprintf ppf "const %b" b
  | Not a -> Format.fprintf ppf "not %d" a
  | And (a, b) -> Format.fprintf ppf "and %d %d" a b
  | Or (a, b) -> Format.fprintf ppf "or %d %d" a b
  | Xor (a, b) -> Format.fprintf ppf "xor %d %d" a b
  | Mux (s, h, l) -> Format.fprintf ppf "mux %d %d %d" s h l
  | Reg s -> Format.fprintf ppf "reg %s" s

(* Rebuild the circuit through the simplifying constructors, turning
   non-kept registers into fresh inputs.  Nodes are visited in creation
   order, which is a topological order of the combinational structure, so
   every fanin is mapped before its user; register next-inputs are
   connected in a second pass. *)
let abstract_registers t ~keep =
  let fresh = create () in
  let map = Array.make (max t.len 1) (-1) in
  let mapped n = map.(n) in
  for n = 0 to t.len - 1 do
    let n' =
      match gate t n with
      | Input name -> input fresh name
      | Const b -> if b then const_true fresh else const_false fresh
      | Not a -> not_ fresh (mapped a)
      | And (a, b) -> and_ fresh (mapped a) (mapped b)
      | Or (a, b) -> or_ fresh (mapped a) (mapped b)
      | Xor (a, b) -> xor_ fresh (mapped a) (mapped b)
      | Mux (s, h, l) -> mux fresh ~sel:(mapped s) ~hi:(mapped h) ~lo:(mapped l)
      | Reg name ->
        if keep n then reg fresh ~name ~init:(reg_init t n)
        else input fresh (name ^ "!abs")
    in
    map.(n) <- n'
  done;
  List.iter
    (fun r -> if keep r then set_next fresh map.(r) map.(reg_next t r))
    (regs t);
  (fresh, fun n -> map.(n))
