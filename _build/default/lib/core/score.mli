(** The paper's variable ranking (Section 3.2).

    After each unsatisfiable BMC instance j, every variable x in that
    instance's unsatisfiable core receives

    {v bmc_score(x) += j v}

    so that (1) all previous cores contribute — no single, possibly
    atypical, core dominates — and (2) recent cores, which correlate best
    with the next instance, weigh more.  The resulting partial order is
    handed to the solver as the primary decision key ({!Sat.Order}).

    Two ablation weightings are provided for the benchmark harness:
    [Uniform] adds 1 per core and [Last_only] keeps only the most recent
    core — the two alternatives the paper's weighting argument (Section 3.2,
    reasons (1) and (2)) is contrasted against. *)

type weighting =
  | Linear  (** the paper's choice: instance index j *)
  | Uniform  (** every core counts 1 *)
  | Last_only  (** only the most recent core counts *)

type t

val create : ?weighting:weighting -> unit -> t
(** Default weighting is [Linear]. *)

val weighting : t -> weighting

val update : t -> instance:int -> core_vars:Sat.Lit.var list -> unit
(** Fold instance [instance]'s core variables into the ranking — the
    paper's [update_ranking(unsatVars, varRank)]. *)

val score : t -> Sat.Lit.var -> float

val rank_array : t -> num_vars:int -> float array
(** Dense snapshot suitable for {!Sat.Order.Static} / [Dynamic]. *)

val num_ranked : t -> int
(** Variables with a non-zero score. *)
