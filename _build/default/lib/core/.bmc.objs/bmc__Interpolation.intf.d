lib/core/interpolation.mli: Circuit Format Sat Trace
