lib/core/shtrichman.ml: Array Unroll Varmap
