type expect =
  | Holds
  | Fails_at of int

type case = {
  name : string;
  netlist : Netlist.t;
  property : Netlist.node;
  expect : expect option;
  suggested_depth : int;
}

let pp_expect ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails_at k -> Format.fprintf ppf "fails@%d" k

(* ------------------------------------------------------------------ *)
(* Property-irrelevant noise.                                          *)
(* ------------------------------------------------------------------ *)

(* Deterministic pseudo-random stream (xorshift-style LCG) so suites are
   reproducible without touching the global Random state. *)
let make_rng seed =
  let state = ref (seed * 2654435761 + 1) in
  fun bound ->
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    abs s mod bound

(* Attach [n] nondeterministically-initialised registers arranged as a
   shifting bank with pseudo-random XOR feedback, mixed with the circuit's
   primary inputs, plus ~2n dangling clutter gates.  Nothing here feeds the
   property, so none of it can appear in an unsatisfiable core — it only
   dilutes the decision heuristic, which is precisely the industrial effect
   the paper exploits. *)
let add_noise nl ~n ~seed =
  if n > 0 then begin
    let rng = make_rng seed in
    let ins = Array.of_list (Netlist.inputs nl) in
    let zs =
      Array.init n (fun i -> Netlist.reg nl ~name:(Printf.sprintf "noise%d_%d" seed i) ~init:None)
    in
    let pick_input () =
      if Array.length ins = 0 then Netlist.const_false nl else ins.(rng (Array.length ins))
    in
    Array.iteri
      (fun i z ->
        let shifted = zs.((i + n - 1) mod n) in
        let tap = zs.(rng n) in
        let fb = Netlist.xor_ nl shifted tap in
        let mixed =
          if rng 3 = 0 then Netlist.xor_ nl fb (Netlist.and_ nl (pick_input ()) zs.(rng n))
          else fb
        in
        Netlist.set_next nl z mixed)
      zs;
    (* Dangling clutter, built as a few deep chains rather than a shallow
       bag of gates: a wrong decision high up a chain only conflicts with
       the implied values many levels later, which is what makes an unguided
       heuristic pay real search effort here. *)
    let pool = Array.append zs ins in
    let pick () =
      if Array.length pool = 0 then Netlist.const_false nl else pool.(rng (Array.length pool))
    in
    for _chain = 1 to 4 do
      let prev = ref (pick ()) in
      for _ = 1 to n do
        let other = pick () in
        let g =
          match rng 3 with
          | 0 -> Netlist.and_ nl !prev other
          | 1 -> Netlist.or_ nl !prev other
          | _ -> Netlist.xor_ nl !prev other
        in
        prev := g
      done
    done
  end

let finish ?(noise = 0) ~name ~nl ~property ~expect ~suggested_depth () =
  add_noise nl ~n:noise ~seed:(Hashtbl.hash name land 0xffff);
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Generators.%s: %s" name msg));
  let name = if noise > 0 then Printf.sprintf "%s_z%d" name noise else name in
  { name; netlist = nl; property; expect; suggested_depth }

(* ------------------------------------------------------------------ *)
(* Failing-property designs.                                           *)
(* ------------------------------------------------------------------ *)

let counter ?noise ~bits ~target () =
  let nl = Netlist.create () in
  let count = Word.regs nl ~prefix:"c" ~width:bits ~init:(Some 0) in
  let incremented, _ = Word.increment nl count in
  Word.connect nl count incremented;
  let property = Netlist.not_ nl (Word.eq_const nl count target) in
  finish ?noise
    ~name:(Printf.sprintf "cnt%d_t%d" bits target)
    ~nl ~property ~expect:(Some (Fails_at target)) ~suggested_depth:target ()

let counter_en ?noise ~bits ~target () =
  let nl = Netlist.create () in
  let en = Netlist.input nl "en" in
  let count = Word.regs nl ~prefix:"c" ~width:bits ~init:(Some 0) in
  let incremented, _ = Word.increment nl count in
  Word.connect nl count (Word.mux nl ~sel:en ~hi:incremented ~lo:count);
  let property = Netlist.not_ nl (Word.eq_const nl count target) in
  finish ?noise
    ~name:(Printf.sprintf "cnte%d_t%d" bits target)
    ~nl ~property ~expect:(Some (Fails_at target)) ~suggested_depth:target ()

let shift_in ?noise ~len () =
  let nl = Netlist.create () in
  let data = Netlist.input nl "d" in
  let stages = Word.regs nl ~prefix:"s" ~width:len ~init:(Some 0) in
  Array.iteri
    (fun i r -> Netlist.set_next nl r (if i = 0 then data else stages.(i - 1)))
    stages;
  let property = Netlist.not_ nl (Word.all_ones nl stages) in
  finish ?noise
    ~name:(Printf.sprintf "shift%d" len)
    ~nl ~property ~expect:(Some (Fails_at len)) ~suggested_depth:len ()

let fifo_counter nl ~bits =
  let push = Netlist.input nl "push" and pop = Netlist.input nl "pop" in
  let count = Word.regs nl ~prefix:"q" ~width:bits ~init:(Some 0) in
  let maxv = (1 lsl bits) - 1 in
  let full = Word.eq_const nl count maxv in
  let empty = Word.is_zero nl count in
  let inc, _ = Word.increment nl count in
  let dec, _ = Word.decrement nl count in
  let do_inc = Netlist.and_list nl [ push; Netlist.not_ nl pop; Netlist.not_ nl full ] in
  let do_dec = Netlist.and_list nl [ pop; Netlist.not_ nl push; Netlist.not_ nl empty ] in
  let next = Word.mux nl ~sel:do_inc ~hi:inc ~lo:(Word.mux nl ~sel:do_dec ~hi:dec ~lo:count) in
  Word.connect nl count next;
  (push, pop, full, empty)

let fifo_overflow ?noise ~bits () =
  let nl = Netlist.create () in
  let push, pop, full, _empty = fifo_counter nl ~bits in
  let error = Netlist.reg nl ~name:"err" ~init:(Some false) in
  let overflow = Netlist.and_list nl [ push; Netlist.not_ nl pop; full ] in
  Netlist.set_next nl error (Netlist.or_ nl error overflow);
  let property = Netlist.not_ nl error in
  (* fill for 2^bits - 1 cycles, overflow on the next, flag visible one
     cycle later: shortest counterexample depth is 2^bits *)
  let depth = 1 lsl bits in
  finish ?noise
    ~name:(Printf.sprintf "fifoovf%d" bits)
    ~nl ~property ~expect:(Some (Fails_at depth)) ~suggested_depth:depth ()

let factor ?noise ~bits ~target () =
  let nl = Netlist.create () in
  let x = Word.inputs nl ~prefix:"x" ~width:bits in
  let y = Word.inputs nl ~prefix:"y" ~width:bits in
  (* one state register so the model is sequential; it plays no role *)
  let seen = Netlist.reg nl ~name:"seen" ~init:(Some false) in
  Netlist.set_next nl seen (Netlist.const_true nl);
  let product = Word.mul nl x y in
  let property = Netlist.not_ nl (Word.eq_const nl product target) in
  let expect =
    (* does target admit a factorisation x*y mod 2^bits with bits-wide
       operands?  brute force for the small widths used in tests *)
    if bits <= 8 then begin
      let found = ref false in
      let m = (1 lsl bits) - 1 in
      for a = 0 to m do
        for b = 0 to m do
          if a * b land m = target land m then found := true
        done
      done;
      Some (if !found then Fails_at 0 else Holds)
    end
    else None
  in
  finish ?noise
    ~name:(Printf.sprintf "factor%d_t%d" bits target)
    ~nl ~property ~expect ~suggested_depth:2 ()

(* ------------------------------------------------------------------ *)
(* Passing-property designs.                                           *)
(* ------------------------------------------------------------------ *)

let ring ?noise ~len () =
  let nl = Netlist.create () in
  let tick = Netlist.input nl "tick" in
  let token = Word.regs nl ~prefix:"t" ~width:len ~init:(Some 1) in
  Word.connect nl token (Word.mux nl ~sel:tick ~hi:(Word.rotate_left token) ~lo:token);
  let property = Word.at_most_one nl token in
  finish ?noise
    ~name:(Printf.sprintf "ring%d" len)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * len) ()

let lfsr_word nl ~prefix ~width ~taps ~seed_value ~enable =
  let state = Word.regs nl ~prefix ~width ~init:(Some seed_value) in
  let feedback =
    List.fold_left
      (fun acc tap -> Netlist.xor_ nl acc state.(tap))
      (Netlist.const_false nl) taps
  in
  let advanced =
    Array.init width (fun i -> if i = width - 1 then feedback else state.(i + 1))
  in
  Word.connect nl state (Word.mux nl ~sel:enable ~hi:advanced ~lo:state);
  state

let lfsr ?noise ~width () =
  let nl = Netlist.create () in
  (* taps include bit 0, so the all-zero state has no nonzero predecessor *)
  let taps = if width >= 4 then [ 0; width - 1 ] else [ 0 ] in
  let enable = Netlist.input nl "en" in
  let state = lfsr_word nl ~prefix:"l" ~width ~taps ~seed_value:1 ~enable in
  let property = Netlist.not_ nl (Word.is_zero nl state) in
  finish ?noise
    ~name:(Printf.sprintf "lfsr%d" width)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * width) ()

let arbiter ?noise ~clients () =
  let nl = Netlist.create () in
  let reqs = Array.init clients (fun i -> Netlist.input nl (Printf.sprintf "req%d" i)) in
  let tick = Netlist.input nl "tick" in
  let token = Word.regs nl ~prefix:"tok" ~width:clients ~init:(Some 1) in
  Word.connect nl token (Word.mux nl ~sel:tick ~hi:(Word.rotate_left token) ~lo:token);
  let grants = Array.mapi (fun i t -> Netlist.and_ nl reqs.(i) t) token in
  let property = Word.at_most_one nl grants in
  finish ?noise
    ~name:(Printf.sprintf "arb%d" clients)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * clients) ()

let fifo_safe ?noise ~bits () =
  let nl = Netlist.create () in
  let _push, _pop, _full, empty = fifo_counter nl ~bits in
  (* A shadow empty-flag maintained incrementally, one cycle ahead: the
     invariant "flag = (count = 0)" is temporal — refuting its negation at
     depth k needs reasoning across frames, unlike a purely combinational
     mismatch. *)
  let count_next =
    List.map (fun r -> Netlist.reg_next nl r) (Netlist.regs nl) |> Array.of_list
  in
  let empty_next = Word.is_zero nl count_next in
  let empty_flag = Netlist.reg nl ~name:"emptyflag" ~init:(Some true) in
  Netlist.set_next nl empty_flag empty_next;
  let property = Netlist.xnor_ nl empty_flag empty in
  finish ?noise
    ~name:(Printf.sprintf "fifo%d" bits)
    ~nl ~property ~expect:(Some Holds)
    ~suggested_depth:(min 32 ((1 lsl bits) + 4))
    ()

let traffic ?noise () =
  let nl = Netlist.create () in
  (* phases: ns-green, ns-yellow, ew-green, ew-yellow; advance on 'tick' *)
  let tick = Netlist.input nl "tick" in
  let phases = Word.regs nl ~prefix:"ph" ~width:4 ~init:(Some 1) in
  let rotated = Word.rotate_left phases in
  Word.connect nl phases (Word.mux nl ~sel:tick ~hi:rotated ~lo:phases);
  let ns_green = phases.(0) and ew_green = phases.(2) in
  let property = Netlist.not_ nl (Netlist.and_ nl ns_green ew_green) in
  finish ?noise ~name:"traffic" ~nl ~property ~expect:(Some Holds) ~suggested_depth:16 ()

let parity_pipe ?noise ~stages () =
  let nl = Netlist.create () in
  let data = Netlist.input nl "d" in
  let delay = Word.regs nl ~prefix:"p" ~width:stages ~init:(Some 0) in
  Array.iteri
    (fun i r -> Netlist.set_next nl r (if i = 0 then data else delay.(i - 1)))
    delay;
  let tree_parity =
    Array.fold_left (Netlist.xor_ nl) (Netlist.const_false nl) delay
  in
  (* incremental implementation: q' = q xor d xor (oldest stage leaving) *)
  let q = Netlist.reg nl ~name:"q" ~init:(Some false) in
  Netlist.set_next nl q (Netlist.xor_ nl (Netlist.xor_ nl q data) delay.(stages - 1));
  let property = Netlist.xnor_ nl tree_parity q in
  finish ?noise
    ~name:(Printf.sprintf "parity%d" stages)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * stages) ()

let johnson ?noise ~width () =
  let nl = Netlist.create () in
  let tick = Netlist.input nl "tick" in
  let state = Word.regs nl ~prefix:"j" ~width ~init:(Some 0) in
  let advanced =
    Array.init width (fun i ->
        if i = 0 then Netlist.not_ nl state.(width - 1) else state.(i - 1))
  in
  Word.connect nl state (Word.mux nl ~sel:tick ~hi:advanced ~lo:state);
  let boundaries =
    Array.init (width - 1) (fun i -> Netlist.xor_ nl state.(i) state.(i + 1))
  in
  let property = Word.at_most_one nl boundaries in
  finish ?noise
    ~name:(Printf.sprintf "johnson%d" width)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * width) ()

let gray ?noise ~bits () =
  let nl = Netlist.create () in
  let en = Netlist.input nl "en" in
  let count = Word.regs nl ~prefix:"b" ~width:bits ~init:(Some 0) in
  let incremented, _ = Word.increment nl count in
  Word.connect nl count (Word.mux nl ~sel:en ~hi:incremented ~lo:count);
  let gray_out =
    Array.init bits (fun i ->
        if i = bits - 1 then count.(i) else Netlist.xor_ nl count.(i) count.(i + 1))
  in
  let prev = Word.regs nl ~prefix:"g" ~width:bits ~init:(Some 0) in
  Word.connect nl prev gray_out;
  let diff = Word.xor_ nl prev gray_out in
  let property = Word.at_most_one nl diff in
  finish ?noise
    ~name:(Printf.sprintf "gray%d" bits)
    ~nl ~property ~expect:(Some Holds)
    ~suggested_depth:(min 48 ((1 lsl bits) + 4))
    ()

let random ~seed ~regs:nregs ~gates ~inputs:nins =
  let rng = make_rng (seed + 1) in
  let nl = Netlist.create () in
  let ins = List.init nins (fun i -> Netlist.input nl (Printf.sprintf "w%d" i)) in
  let rs =
    List.init nregs (fun i ->
        let init = match rng 3 with 0 -> Some false | 1 -> Some true | _ -> None in
        Netlist.reg nl ~name:(Printf.sprintf "r%d" i) ~init)
  in
  let pool = ref (Netlist.const_false nl :: Netlist.const_true nl :: (ins @ rs)) in
  let pick () =
    let arr = Array.of_list !pool in
    arr.(rng (Array.length arr))
  in
  for _ = 1 to gates do
    let g =
      match rng 6 with
      | 0 -> Netlist.not_ nl (pick ())
      | 1 -> Netlist.and_ nl (pick ()) (pick ())
      | 2 -> Netlist.or_ nl (pick ()) (pick ())
      | 3 -> Netlist.xor_ nl (pick ()) (pick ())
      | 4 -> Netlist.mux nl ~sel:(pick ()) ~hi:(pick ()) ~lo:(pick ())
      | _ -> Netlist.xnor_ nl (pick ()) (pick ())
    in
    pool := g :: !pool
  done;
  List.iter (fun r -> Netlist.set_next nl r (pick ())) rs;
  let property = pick () in
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generators.random: " ^ msg));
  {
    name = Printf.sprintf "rand_s%d_r%d_g%d_i%d" seed nregs gates nins;
    netlist = nl;
    property;
    expect = None;
    suggested_depth = 8;
  }

let priority_arbiter ?noise ~clients () =
  let nl = Netlist.create () in
  let reqs = Array.init clients (fun i -> Netlist.input nl (Printf.sprintf "req%d" i)) in
  (* grant the lowest-index active request, combinationally *)
  let granted = Array.make clients (Netlist.const_false nl) in
  let blocked = ref (Netlist.const_false nl) in
  Array.iteri
    (fun i r ->
      granted.(i) <- Netlist.and_ nl r (Netlist.not_ nl !blocked);
      blocked := Netlist.or_ nl !blocked r)
    reqs;
  (* latch the grants; the invariant is on the registered copy *)
  let latched = Word.regs nl ~prefix:"g" ~width:clients ~init:(Some 0) in
  Array.iteri (fun i r -> Netlist.set_next nl r granted.(i)) latched;
  let property = Word.at_most_one nl latched in
  finish ?noise
    ~name:(Printf.sprintf "prio%d" clients)
    ~nl ~property ~expect:(Some Holds) ~suggested_depth:(2 * clients) ()

let elevator ?noise ~bits () =
  let nl = Netlist.create () in
  let up = Netlist.input nl "up" in
  let down = Netlist.input nl "down" in
  let door = Netlist.input nl "door" in
  let pos = Word.regs nl ~prefix:"p" ~width:bits ~init:(Some 0) in
  let at_top = Word.all_ones nl pos in
  let at_bottom = Word.is_zero nl pos in
  let door_open = Netlist.reg nl ~name:"open" ~init:(Some false) in
  Netlist.set_next nl door_open door;
  (* the interlock blocks motion while the door is open or opening *)
  let may_move = Netlist.nor_ nl door_open door in
  let inc, _ = Word.increment nl pos in
  let dec, _ = Word.decrement nl pos in
  let go_up = Netlist.and_list nl [ up; may_move; Netlist.not_ nl at_top ] in
  let go_down =
    Netlist.and_list nl [ down; Netlist.not_ nl up; may_move; Netlist.not_ nl at_bottom ]
  in
  let next = Word.mux nl ~sel:go_up ~hi:inc ~lo:(Word.mux nl ~sel:go_down ~hi:dec ~lo:pos) in
  Word.connect nl pos next;
  (* shadow of the previous position; the cab must stand still while the
     door is open *)
  let prev = Word.regs nl ~prefix:"q" ~width:bits ~init:(Some 0) in
  Word.connect nl prev pos;
  let property = Netlist.implies nl door_open (Word.eq nl pos prev) in
  finish ?noise
    ~name:(Printf.sprintf "elev%d" bits)
    ~nl ~property ~expect:(Some Holds)
    ~suggested_depth:(min 32 ((1 lsl bits) + 4))
    ()

let watchdog ?noise ~bits () =
  let nl = Netlist.create () in
  let kick = Netlist.input nl "kick" in
  let timer = Word.regs nl ~prefix:"t" ~width:bits ~init:(Some 0) in
  let inc, _ = Word.increment nl timer in
  let zero = Word.const nl ~width:bits 0 in
  Word.connect nl timer (Word.mux nl ~sel:kick ~hi:zero ~lo:inc);
  let expired = Word.all_ones nl timer in
  let property = Netlist.not_ nl expired in
  (* never kicking lets the timer saturate: shortest failure 2^bits - 1 *)
  let depth = (1 lsl bits) - 1 in
  finish ?noise
    ~name:(Printf.sprintf "wdog%d" bits)
    ~nl ~property ~expect:(Some (Fails_at depth)) ~suggested_depth:depth ()

(* ------------------------------------------------------------------ *)
(* Suites.                                                             *)
(* ------------------------------------------------------------------ *)

let suite () =
  [
    (* failing properties (counterexample at a known depth) *)
    counter ~bits:6 ~target:20 ();
    counter ~bits:7 ~target:40 ~noise:16 ();
    watchdog ~bits:6 ~noise:32 ();
    counter_en ~bits:5 ~target:18 ();
    counter_en ~bits:6 ~target:30 ~noise:32 ();
    counter_en ~bits:6 ~target:40 ~noise:48 ();
    shift_in ~len:16 ();
    shift_in ~len:24 ~noise:24 ();
    shift_in ~len:32 ~noise:48 ();
    fifo_overflow ~bits:4 ();
    fifo_overflow ~bits:4 ~noise:32 ();
    fifo_overflow ~bits:5 ~noise:16 ();
    (* passing properties (all instances unsatisfiable) *)
    ring ~len:12 ();
    ring ~len:16 ~noise:24 ();
    ring ~len:20 ~noise:32 ();
    lfsr ~width:12 ();
    lfsr ~width:14 ~noise:24 ();
    lfsr ~width:16 ~noise:32 ();
    lfsr ~width:18 ~noise:48 ();
    arbiter ~clients:8 ();
    arbiter ~clients:12 ~noise:24 ();
    arbiter ~clients:16 ~noise:48 ();
    fifo_safe ~bits:4 ();
    fifo_safe ~bits:5 ~noise:24 ();
    fifo_safe ~bits:6 ~noise:48 ();
    traffic ();
    traffic ~noise:32 ();
    priority_arbiter ~clients:12 ~noise:32 ();
    parity_pipe ~stages:10 ();
    parity_pipe ~stages:12 ~noise:24 ();
    parity_pipe ~stages:14 ~noise:32 ();
    johnson ~width:10 ();
    johnson ~width:12 ~noise:24 ();
    johnson ~width:14 ~noise:32 ();
    gray ~bits:5 ();
    gray ~bits:5 ~noise:24 ();
    elevator ~bits:4 ~noise:32 ();
  ]

let tiny_suite () =
  [
    counter ~bits:3 ~target:5 ();
    counter_en ~bits:3 ~target:4 ();
    shift_in ~len:4 ();
    fifo_overflow ~bits:2 ();
    watchdog ~bits:3 ();
    priority_arbiter ~clients:4 ();
    elevator ~bits:3 ();
    ring ~len:5 ();
    lfsr ~width:5 ();
    arbiter ~clients:4 ();
    fifo_safe ~bits:3 ();
    traffic ();
    parity_pipe ~stages:4 ();
    johnson ~width:5 ();
    gray ~bits:3 ();
  ]

let fig7_case () = ring ~len:16 ~noise:24 ()

let by_name name =
  List.find_opt (fun c -> c.name = name) (suite () @ tiny_suite () @ [ fig7_case () ])
