test/test_solver.ml: Alcotest Array Format Fun Hashtbl Int List QCheck QCheck_alcotest Sat
