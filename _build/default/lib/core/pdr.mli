(** IC3 / property-directed reachability (Bradley, VMCAI 2011).

    The modern unbounded-proof engine, included as the end point of the
    lineage the paper sits in: BMC refutes with bounded unrollings, the
    refined ordering accelerates the UNSAT sequence, cores give
    abstractions and induction gives proofs — IC3 replaces the unrolling
    altogether with incremental relative-induction queries over a single
    transition step.

    Frames F₀ ⊇ F₁ ⊇ ... are sets of blocked cubes over the registers
    (F₀ is the initial-state predicate).  A violation of P in F_k spawns
    proof obligations that are recursively blocked by one-step queries
    [F_{i−1} ∧ ¬s ∧ T ∧ s′]; blocked cubes are literal-dropped
    (generalised) while the query stays UNSAT and the cube stays disjoint
    from the initial states, and clauses are propagated forward.  Two
    adjacent frames becoming equal yields an inductive invariant; an
    obligation chain reaching the initial states yields a counterexample,
    which is replayed on the simulator before being reported.

    Queries are answered by fresh solvers over a two-frame unrolling of the
    transition relation — deliberately simple; the circuits here are small
    and every query is independent. *)

type verdict =
  | Proved of { frames : int; invariant_clauses : int }
      (** an inductive invariant was found at this frame count *)
  | Falsified of Trace.t  (** replayed counterexample *)
  | Unknown of { frames : int; queries : int }
      (** resource limit hit (queries or frames) *)

type result = {
  verdict : verdict;
  queries : int;  (** SAT queries issued *)
  total_time : float;
}

val prove :
  ?max_frames:int ->
  ?max_queries:int ->
  Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  result
(** [prove nl ~property] runs IC3.  Defaults: [max_frames = 64],
    [max_queries = 200_000].
    @raise Invalid_argument if the netlist does not validate. *)

val prove_case : ?max_frames:int -> ?max_queries:int -> Circuit.Generators.case -> result

val pp_verdict : Format.formatter -> verdict -> unit
