(** Explicit-state invariant checking by breadth-first reachability.

    The ground-truth oracle for small circuits: enumerate every reachable
    register state (and every input valuation at each state) and test the
    invariant.  Exponential in registers and inputs, so callers must keep
    both small (the test suite stays ≤ 20 registers, ≤ 8 inputs).  BMC
    results are cross-checked against this in the integration tests. *)

type verdict =
  | Holds of { diameter : int }
      (** The invariant is true in every reachable state; [diameter] is the
          longest shortest-path distance from an initial state, i.e. the
          completeness threshold for this property. *)
  | Fails_at of int
      (** Shortest counterexample length: an initial state violating the
          property gives [Fails_at 0]. *)
  | Too_large
      (** Gave up: register or input count above the configured limits. *)

val check :
  ?max_regs:int -> ?max_inputs:int -> Netlist.t -> property:Netlist.node -> verdict
(** [check nl ~property] explores the reachable state space of the
    property's cone of influence (registers and inputs outside the cone
    cannot affect the verdict and are projected away first, so the limits
    apply to the cone only).  Defaults: [max_regs = 22], [max_inputs = 10].
    The [diameter] reported by [Holds] is that of the projected system.
    @raise Invalid_argument if the netlist does not validate. *)

val equal_verdict : verdict -> verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
