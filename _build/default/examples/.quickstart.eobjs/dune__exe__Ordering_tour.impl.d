examples/ordering_tour.ml: Bmc Format List Sat String
