(* Key layout: ((node lsl frame_bits) lor frame) lsl 1 lor neg — 40 node
   bits, 20 frame bits, one sign bit, all inside OCaml's 63-bit int. *)
let frame_bits = 20

let max_frame = 1 lsl frame_bits

let max_node = 1 lsl 40

let pack_lit ~node ~frame ~neg =
  (((node lsl frame_bits) lor frame) lsl 1) lor (if neg then 1 else 0)

let unpack_lit key =
  let neg = key land 1 = 1 in
  let nf = key lsr 1 in
  (nf lsr frame_bits, nf land (max_frame - 1), neg)

type config = {
  capacity : int;
  max_size : int;
  max_lbd : int;
  restart_budget : int; (* exports a solver may make per restart; max_int = unlimited *)
}

let default_config = { capacity = 1024; max_size = 8; max_lbd = 4; restart_budget = max_int }

(* [c_consumed] is the first-import latch: the first sibling to consume the
   clause flips it with a CAS, so the aggregate "imported" counter counts
   distinct clauses and [imported <= exported] holds by construction
   whatever the number of consumers.  [c_src_id] is the clause's pseudo ID
   in the exporter's proof shard (-1 when the exporter logs no proof) —
   together with the ring's [src] endpoint id it is the clause's global
   provenance, which importers record as a cross-shard proof edge. *)
type clause = { c_lits : int array; c_src_id : int; c_consumed : bool Atomic.t }

type t = {
  cfg : config;
  ring : clause Ring.t;
  next_id : int Atomic.t;
  exported : int Atomic.t;
  imported : int Atomic.t;
  delivered : int Atomic.t;
  rejected_tainted : int Atomic.t;
  dropped_stale : int Atomic.t;
  import_used : int Atomic.t; (* imports that were load-bearing in a refutation *)
}

let create ?(config = default_config) () =
  if config.capacity < 1 || config.max_size < 1 || config.max_lbd < 1
     || config.restart_budget < 1
  then invalid_arg "Exchange.create";
  {
    cfg = config;
    ring = Ring.create ~capacity:config.capacity;
    next_id = Atomic.make 0;
    exported = Atomic.make 0;
    imported = Atomic.make 0;
    delivered = Atomic.make 0;
    rejected_tainted = Atomic.make 0;
    dropped_stale = Atomic.make 0;
    import_used = Atomic.make 0;
  }

let config t = t.cfg

type endpoint = {
  ex : t;
  id : int;
  ep_name : string;
  cur : clause Ring.cursor;
  seen : (int, unit) Hashtbl.t; (* hashes published or imported here *)
  mutable drops_reported : int; (* cursor drops already pushed to the aggregate *)
  (* import-usefulness accounting (domain-confined, like the endpoint) *)
  mutable ep_delivered : int; (* clauses this endpoint consumed *)
  mutable ep_used : int; (* of those, load-bearing in one of its refutations *)
  mutable ep_lbd_cap : int; (* current adaptive export LBD cap *)
  mutable mark_delivered : int; (* ep_delivered at the last tune decision *)
  mutable mark_used : int;
}

let endpoint t ~name =
  {
    ex = t;
    id = Atomic.fetch_and_add t.next_id 1;
    ep_name = name;
    cur = Ring.cursor t.ring;
    seen = Hashtbl.create 256;
    drops_reported = 0;
    ep_delivered = 0;
    ep_used = 0;
    ep_lbd_cap = t.cfg.max_lbd;
    mark_delivered = 0;
    mark_used = 0;
  }

let name ep = ep.ep_name

let endpoint_id ep = ep.id

let max_size ep = ep.ex.cfg.max_size

let max_lbd ep = ep.ex.cfg.max_lbd

(* Order-independent hash: the same clause hashes identically whatever
   literal order the exporter's watch scheme left it in.  A collision only
   costs a suppressed share, never soundness. *)
let clause_hash lits =
  let a = Array.copy lits in
  Array.sort compare a;
  Array.fold_left (fun h k -> (h * 1000003) + k) (Array.length a) a

let publish ?(src_id = -1) ep lits ~lbd =
  let n = Array.length lits in
  if n < 1 || n > ep.ex.cfg.max_size || lbd > ep.ex.cfg.max_lbd then false
  else begin
    let h = clause_hash lits in
    if Hashtbl.mem ep.seen h then false
    else begin
      Hashtbl.replace ep.seen h ();
      Ring.publish ep.ex.ring ~src:ep.id
        { c_lits = lits; c_src_id = src_id; c_consumed = Atomic.make false };
      Atomic.incr ep.ex.exported;
      true
    end
  end

let flush_drops ep =
  let d = Ring.dropped ep.cur in
  if d > ep.drops_reported then begin
    ignore (Atomic.fetch_and_add ep.ex.dropped_stale (d - ep.drops_reported));
    ep.drops_reported <- d
  end

let drain ep f =
  let delivered = ref 0 in
  ignore
    (Ring.poll ep.cur (fun ~src cl ->
         if src <> ep.id then begin
           let h = clause_hash cl.c_lits in
           if not (Hashtbl.mem ep.seen h) then begin
             Hashtbl.replace ep.seen h ();
             if Atomic.compare_and_set cl.c_consumed false true then
               Atomic.incr ep.ex.imported;
             Atomic.incr ep.ex.delivered;
             ep.ep_delivered <- ep.ep_delivered + 1;
             incr delivered;
             let origin = if cl.c_src_id >= 0 then Some (src, cl.c_src_id) else None in
             f cl.c_lits ~origin
           end
         end));
  flush_drops ep;
  !delivered

let note_dropped ep n = if n > 0 then ignore (Atomic.fetch_and_add ep.ex.dropped_stale n)

let note_rejected_tainted ep n =
  if n > 0 then ignore (Atomic.fetch_and_add ep.ex.rejected_tainted n)

let note_import_used ep n =
  if n > 0 then begin
    ep.ep_used <- ep.ep_used + n;
    ignore (Atomic.fetch_and_add ep.ex.import_used n)
  end

let restart_budget ep = ep.ex.cfg.restart_budget

let lbd_cap ep = ep.ep_lbd_cap

(* Minimum deliveries between cap moves: below this the used/delivered
   ratio is noise, and the cap must not drift on it. *)
let tune_sample = 16

(* Deterministic adaptation of the export LBD cap from the usefulness of
   the imports this endpoint consumed (the available proxy for overall
   exchange quality): >= 1/4 of recent imports load-bearing widens the cap
   towards the configured maximum, < 1/16 narrows it towards 1.  Called
   from the solver's restart-boundary tune hook. *)
let tune ep =
  let delivered = ep.ep_delivered - ep.mark_delivered in
  if delivered < tune_sample then Some ep.ep_lbd_cap
  else begin
    let used = ep.ep_used - ep.mark_used in
    ep.mark_delivered <- ep.ep_delivered;
    ep.mark_used <- ep.ep_used;
    let cap =
      if used * 4 >= delivered then min (ep.ep_lbd_cap + 1) ep.ex.cfg.max_lbd
      else if used * 16 < delivered then max (ep.ep_lbd_cap - 1) 1
      else ep.ep_lbd_cap
    in
    ep.ep_lbd_cap <- cap;
    Some cap
  end

type stats = {
  exported : int;
  imported : int;
  delivered : int;
  rejected_tainted : int;
  dropped_stale : int;
  import_used : int;
  occupancy : int;
  capacity : int;
}

let stats (t : t) =
  {
    exported = Atomic.get t.exported;
    imported = Atomic.get t.imported;
    delivered = Atomic.get t.delivered;
    rejected_tainted = Atomic.get t.rejected_tainted;
    dropped_stale = Atomic.get t.dropped_stale;
    import_used = Atomic.get t.import_used;
    occupancy = Ring.occupancy t.ring;
    capacity = t.cfg.capacity;
  }

let dump t =
  (* a fresh cursor starts at the oldest readable entry *)
  let cur = Ring.cursor t.ring in
  let acc = ref [] in
  ignore (Ring.poll cur (fun ~src:_ cl -> acc := cl.c_lits :: !acc));
  List.rev !acc

let stats_fields s =
  [
    ("exported", s.exported);
    ("imported", s.imported);
    ("delivered", s.delivered);
    ("rejected_tainted", s.rejected_tainted);
    ("dropped_stale", s.dropped_stale);
    ("import_used", s.import_used);
    ("occupancy", s.occupancy);
    ("capacity", s.capacity);
  ]

let pp_stats ppf s =
  Format.fprintf ppf
    "exported=%d imported=%d delivered=%d rejected_tainted=%d dropped_stale=%d \
     import_used=%d occupancy=%d/%d"
    s.exported s.imported s.delivered s.rejected_tainted s.dropped_stale s.import_used
    s.occupancy s.capacity
