lib/circuit/textio.mli: Format Netlist
