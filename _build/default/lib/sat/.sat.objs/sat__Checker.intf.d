lib/sat/checker.mli: Cnf Lit
