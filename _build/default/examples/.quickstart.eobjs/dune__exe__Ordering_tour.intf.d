examples/ordering_tour.mli:
