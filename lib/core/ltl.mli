(** Bounded LTL model checking (Biere–Cimatti–Clarke–Zhu, TACAS 1999 — the
    paper's reference [1]).

    The paper describes BMC as checking "a linear time property" with
    bounded counter-examples; invariants ([G p], the {!Engine}) are the
    special case.  This module implements the general bounded semantics: a
    length-k witness for the {e negation} of the property is either a
    finite path (informative prefix) or a (k,l)-lasso — a path of k+1
    states whose successor of state k loops back to state l.  Both shapes
    are encoded into the depth-k instance; the without-loop translation is
    pessimistic (it never wrongly claims a witness), the with-loop
    translations use the two-lap fixpoint encoding for U/R.

    The SAT instances form the same correlated UNSAT sequence as invariant
    BMC, so the paper's core-based ordering refinement drives them
    unchanged (choose the mode through {!Engine.config}). *)

(** Formulas over netlist signals.  Use the smart constructors; negation is
    pushed to the atoms internally (negation normal form). *)
type formula

val atom : Circuit.Netlist.node -> formula
(** The boolean signal is true now. *)

val not_ : formula -> formula

val and_ : formula -> formula -> formula

val or_ : formula -> formula -> formula

val implies : formula -> formula -> formula

val next : formula -> formula
(** X φ: φ holds in the next state. *)

val eventually : formula -> formula
(** F φ. *)

val always : formula -> formula
(** G φ. *)

val until : formula -> formula -> formula
(** φ U ψ (strong until). *)

val release : formula -> formula -> formula
(** φ R ψ. *)

val pp : ?netlist:Circuit.Netlist.t -> unit -> Format.formatter -> formula -> unit

exception Parse_error of string

val parse : Circuit.Netlist.t -> string -> formula
(** Parse the concrete syntax

    {v φ ::= name | true | false | !φ | G φ | F φ | X φ
           | φ & φ | φ '|' φ | φ U φ | φ R φ | φ -> φ | (φ) v}

    where [name] resolves through {!Circuit.Netlist.find}.  Precedence,
    loosest first: [->] (right), [U]/[R] (right), [|], [&], prefixes.
    @raise Parse_error on syntax errors or unknown signal names. *)

type witness = {
  depth : int;  (** k: the witness spans states 0..k *)
  loop_start : int option;
      (** [Some l] for a (k,l)-lasso; [None] for a finite informative
          prefix *)
  trace : Trace.t;  (** inputs and initial registers, frames 0..k *)
}

type verdict =
  | Falsified of witness  (** a witness for ¬φ exists: the property fails *)
  | Bounded_pass of int  (** no witness up to this bound *)
  | Aborted of int

type result = {
  verdict : verdict;
  per_depth : Engine.depth_stat list;
  total_time : float;
}

val check :
  ?config:Engine.config -> ?policy:Session.policy -> Circuit.Netlist.t -> formula -> result
(** Search for a bounded witness of the property's negation, depth by
    depth, refining the decision ordering from each UNSAT instance's core
    exactly as the invariant engine does.  Witnesses are re-simulated and
    re-evaluated on the concrete lasso before being reported.

    Runs on a {!Session} ([policy] defaults to [Persistent]): the
    transition relation loads frame by frame into one live solver, while
    the per-depth witness-shape encoding (Tseitin auxiliaries and all) is
    guarded behind the instance's activation literal and retired when the
    search deepens.  [~policy:Fresh] reproduces the seed's
    solver-per-depth behaviour.
    @raise Invalid_argument if the netlist does not validate or a formula
    atom is not a node of it. *)

val holds_on_lasso :
  Circuit.Netlist.t ->
  formula ->
  init:(Circuit.Netlist.node * bool) list ->
  inputs:(Circuit.Netlist.node * bool) list array ->
  loop_start:int option ->
  bool
(** Evaluate the formula on the concrete (possibly looping) execution
    described by the initial registers and per-frame inputs, under the
    bounded semantics matching the encoder (pessimistic without loop).
    Used to validate witnesses; exposed for testing. *)
