type verdict =
  | Proved of int
  | Falsified of Trace.t
  | Unknown of int

type step_stat = {
  depth : int;
  base_outcome : Sat.Solver.outcome;
  step_outcome : Sat.Solver.outcome option;
  base_decisions : int;
  step_decisions : int;
  time : float;
}

type result = {
  verdict : verdict;
  per_depth : step_stat list;
  total_time : float;
}

let pp_verdict ppf = function
  | Proved k -> Format.fprintf ppf "proved by %d-induction" k
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Unknown k -> Format.fprintf ppf "undecided up to depth %d" k

(* Pairwise state-disequality over the step path: for every i < j ≤ last,
   some register differs between frames i and j.  The XOR auxiliaries come
   from the session (instance-local, so under the persistent policy they
   are guarded and retired with the instance). *)
let add_simple_path_constraints session ~last regs =
  for i = 0 to last - 1 do
    for j = i + 1 to last do
      let diff_lits =
        List.map
          (fun r ->
            let a = Sat.Lit.pos (Session.var_of session ~node:r ~frame:i) in
            let b = Sat.Lit.pos (Session.var_of session ~node:r ~frame:j) in
            let d = Session.fresh_lit session in
            (* d ↔ a ⊕ b *)
            Session.constrain session [ Sat.Lit.negate d; a; b ];
            Session.constrain session [ Sat.Lit.negate d; Sat.Lit.negate a; Sat.Lit.negate b ];
            Session.constrain session [ d; a; Sat.Lit.negate b ];
            Session.constrain session [ d; Sat.Lit.negate a; b ];
            d)
          regs
      in
      Session.constrain session diff_lits
    done
  done

let prove ?(config = Engine.default_config) ?(policy = Session.Persistent)
    ?(simple_path = false) netlist ~property =
  let cfg = config in
  (match Circuit.Netlist.validate netlist with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Induction.prove: " ^ msg));
  (* Two sessions over one shared score: the base case is ordinary BMC with
     core refinement; the step case unrolls from an arbitrary state and
     consumes the ranking without feeding it (its instances are not part of
     the correlated refutation sequence, and the seed ran it without proof
     logging). *)
  let score = Score.create ~weighting:cfg.weighting () in
  let base = Session.create ~policy ~score cfg netlist ~property in
  let step =
    Session.create ~policy ~constrain_init:false ~score ~learn_cores:false cfg netlist ~property
  in
  let regs = Circuit.Netlist.regs netlist in
  (* the step instance constrains the property at every frame and (with
     simple-path) the registers at every frame pair, so those nodes must
     survive any depth-boundary variable elimination *)
  Session.freeze_nodes step (property :: regs);
  let per_depth = ref [] in
  let start = Sys.time () in
  let finish verdict =
    { verdict; per_depth = List.rev !per_depth; total_time = Sys.time () -. start }
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Unknown cfg.max_depth)
    else begin
      let t0 = Sys.time () in
      (* base case: ordinary BMC instance k, with core refinement *)
      Session.begin_instance base ~k;
      Session.constrain base [ Sat.Lit.neg (Session.var_of base ~node:property ~frame:k) ];
      let bstat = Session.solve_instance base in
      let base_outcome = bstat.Session.outcome in
      let base_decisions = bstat.Session.decisions in
      match base_outcome with
      | Sat.Solver.Sat ->
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = None;
            base_decisions;
            step_decisions = 0;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        let trace = Session.trace base in
        if not (Trace.replay trace netlist ~property) then
          failwith "Induction.prove: counterexample failed to replay (internal error)";
        finish (Falsified trace)
      | Sat.Solver.Unknown ->
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = None;
            base_decisions;
            step_decisions = 0;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        finish (Unknown k)
      | Sat.Solver.Unsat ->
        (* step case over the arbitrary-start unrolling:
           frames 0..k+1, P at 0..k, ¬P at k+1, optional uniqueness *)
        Session.begin_instance step ~k:(k + 1);
        for i = 0 to k do
          Session.constrain step [ Sat.Lit.pos (Session.var_of step ~node:property ~frame:i) ]
        done;
        Session.constrain step
          [ Sat.Lit.neg (Session.var_of step ~node:property ~frame:(k + 1)) ];
        if simple_path then add_simple_path_constraints step ~last:(k + 1) regs;
        let sstat = Session.solve_instance step in
        let step_outcome = sstat.Session.outcome in
        per_depth :=
          {
            depth = k;
            base_outcome;
            step_outcome = Some step_outcome;
            base_decisions;
            step_decisions = sstat.Session.decisions;
            time = Sys.time () -. t0;
          }
          :: !per_depth;
        (match step_outcome with
        | Sat.Solver.Unsat -> finish (Proved k)
        | Sat.Solver.Sat -> loop (k + 1)
        | Sat.Solver.Unknown -> finish (Unknown k))
    end
  in
  loop 0

let prove_case ?config ?policy ?simple_path (case : Circuit.Generators.case) =
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with max_depth = case.Circuit.Generators.suggested_depth }
  in
  prove ~config ?policy ?simple_path case.Circuit.Generators.netlist
    ~property:case.Circuit.Generators.property
