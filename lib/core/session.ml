(* Netlist nodes are non-negative, so small negative pseudo-nodes are free
   for session bookkeeping in the shared Varmap: -1 for activation
   literals (one per instance, at frame k), -2 for instance-local Tseitin
   auxiliaries (at a monotonically increasing pseudo-frame).  Routing both
   through the Varmap keeps every allocation disjoint from the circuit
   variables of frames materialised later. *)
let activation_node = -1

let aux_node = -2

(* A pluggable ordering heuristic (the ordering laboratory).  [c_order]
   produces the per-depth rank mode exactly like the built-in modes do;
   [c_hooks], when present, builds the solver callbacks once per session
   (conflict-frequency tables, assumption permutations — state that must
   survive across depths lives behind these closures).  Instances are
   created fresh per session by the registry ([Ordering.find]): hook state
   is mutable and must never be shared between solvers. *)
type custom = {
  c_name : string;
  c_uses_cores : bool; (* does [c_order] consume folded unsat cores? *)
  c_order : Unroll.t -> Score.t -> k:int -> Sat.Order.mode;
  c_hooks : (Unroll.t -> Score.t -> solver:Sat.Solver.t -> Sat.Solver.hooks) option;
}

type mode =
  | Standard
  | Static
  | Dynamic
  | Shtrichman
  | Custom of custom

(* What quality of unsat core feeds the ranking (and the reports):
   [Fast] takes the proof-derived core as-is; [Exact] additionally asks for
   proof collection so coordinators (the portfolio race) can stitch the
   cross-solver core; [Minimal] runs destructive core minimisation
   ({!Sat.Coremin}) on every UNSAT instance before folding. *)
type core_mode =
  | Core_fast
  | Core_exact
  | Core_minimal

type config = {
  mode : mode;
  weighting : Score.weighting;
  coi : bool;
  budget : Sat.Solver.budget;
  max_depth : int;
  collect_cores : bool;
  core_mode : core_mode;
  coremin_budget : Sat.Coremin.budget;
  restart_base : int option;
  inprocess : Sat.Inprocess.config option;
  telemetry : Telemetry.t;
  recorder : Obs.Recorder.t option;
}

let default_config =
  {
    mode = Standard;
    weighting = Score.Linear;
    coi = false;
    budget = Sat.Solver.no_budget;
    max_depth = 20;
    collect_cores = false;
    core_mode = Core_fast;
    coremin_budget = Sat.Coremin.no_budget;
    restart_base = None;
    inprocess = None;
    telemetry = Telemetry.disabled;
    recorder = None;
  }

let make_config ?(mode = Standard) ?(weighting = Score.Linear) ?(coi = false)
    ?(budget = Sat.Solver.no_budget) ?(max_depth = 20) ?(collect_cores = false)
    ?(core_mode = Core_fast) ?(coremin_budget = Sat.Coremin.no_budget) ?restart_base
    ?inprocess ?(telemetry = Telemetry.disabled) ?recorder () =
  {
    mode;
    weighting;
    coi;
    budget;
    max_depth;
    collect_cores;
    core_mode;
    coremin_budget;
    restart_base;
    inprocess;
    telemetry;
    recorder;
  }

let pp_core_mode ppf = function
  | Core_fast -> Format.pp_print_string ppf "fast"
  | Core_exact -> Format.pp_print_string ppf "exact"
  | Core_minimal -> Format.pp_print_string ppf "minimal"

let core_mode_of_string = function
  | "fast" -> Some Core_fast
  | "exact" -> Some Core_exact
  | "minimal" -> Some Core_minimal
  | _ -> None

(* Does this mode consume unsat cores between instances? *)
let uses_cores = function
  | Static | Dynamic -> true
  | Standard | Shtrichman -> false
  | Custom c -> c.c_uses_cores

let order_mode cfg unroll score ~k =
  match cfg.mode with
  | Standard -> Sat.Order.Vsids
  | Static ->
    Sat.Order.Static (Score.rank_array score ~num_vars:(Varmap.num_vars (Unroll.varmap unroll)))
  | Dynamic ->
    Sat.Order.Dynamic (Score.rank_array score ~num_vars:(Varmap.num_vars (Unroll.varmap unroll)))
  | Shtrichman -> Sat.Order.Static (Shtrichman.rank unroll ~k)
  | Custom c -> c.c_order unroll score ~k

(* Per-instance counters out of a persistent solver's cumulative totals.
   Monotonic counters are differenced; gauges keep the [after] value. *)
let stats_delta ~(before : Sat.Stats.t) ~(after : Sat.Stats.t) =
  {
    Sat.Stats.decisions = after.decisions - before.decisions;
    decisions_rank = after.decisions_rank - before.decisions_rank;
    decisions_vsids = after.decisions_vsids - before.decisions_vsids;
    propagations = after.propagations - before.propagations;
    conflicts = after.conflicts - before.conflicts;
    restarts = after.restarts - before.restarts;
    learned = after.learned - before.learned;
    deleted = after.deleted - before.deleted;
    max_decision_level = after.max_decision_level;
    heuristic_switches = after.heuristic_switches - before.heuristic_switches;
    blocker_hits = after.blocker_hits - before.blocker_hits;
    arena_bytes = after.arena_bytes;
    arena_compactions = after.arena_compactions - before.arena_compactions;
    shared_exported = after.shared_exported - before.shared_exported;
    shared_imported = after.shared_imported - before.shared_imported;
    shared_rejected_tainted = after.shared_rejected_tainted - before.shared_rejected_tainted;
    shared_throttled = after.shared_throttled - before.shared_throttled;
    inpr_runs = after.inpr_runs - before.inpr_runs;
    inpr_probes = after.inpr_probes - before.inpr_probes;
    inpr_probe_failed = after.inpr_probe_failed - before.inpr_probe_failed;
    inpr_satisfied = after.inpr_satisfied - before.inpr_satisfied;
    inpr_subsumed = after.inpr_subsumed - before.inpr_subsumed;
    inpr_strengthened = after.inpr_strengthened - before.inpr_strengthened;
    inpr_eliminated = after.inpr_eliminated - before.inpr_eliminated;
    inpr_resolvents = after.inpr_resolvents - before.inpr_resolvents;
    inpr_time = after.inpr_time -. before.inpr_time;
    solve_time = after.solve_time -. before.solve_time;
    bcp_time = after.bcp_time -. before.bcp_time;
    analyze_time = after.analyze_time -. before.analyze_time;
  }

let pp_mode ppf = function
  | Standard -> Format.pp_print_string ppf "standard"
  | Static -> Format.pp_print_string ppf "static"
  | Dynamic -> Format.pp_print_string ppf "dynamic"
  | Shtrichman -> Format.pp_print_string ppf "shtrichman"
  | Custom c -> Format.pp_print_string ppf c.c_name

let mode_of_string = function
  | "standard" -> Some Standard
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | "shtrichman" -> Some Shtrichman
  | _ -> None

let all_modes = [ Standard; Static; Dynamic; Shtrichman ]

let mode_string m = Format.asprintf "%a" pp_mode m

type depth_stat = {
  depth : int;
  mode : mode;
  outcome : Sat.Solver.outcome;
  decisions : int;
  dec_rank : int;
  dec_vsids : int;
  implications : int;
  conflicts : int;
  core_size : int;
  core_var_count : int;
  core_new : int;
  core_dropped : int;
  core_pre : int;
  coremin_time : float;
  coremin_certified : bool;
  switched : bool;
  time : float;
  build_time : float;
  bcp_time : float;
  cdg_time : float;
  inpr_elim : int;
  inpr_subsumed : int;
  inpr_strengthened : int;
  inpr_probe_failed : int;
  inpr_time : float;
}

(* Symmetric difference sizes between two core-variable sets: how much of
   the previous depth's proof survives into this one — the stability the
   paper's rank folding bets on. *)
let core_churn ~prev ~cur =
  let prev = List.sort_uniq compare prev and cur = List.sort_uniq compare cur in
  let rec go p c added dropped =
    match (p, c) with
    | [], [] -> (added, dropped)
    | [], _ :: c' -> go [] c' (added + 1) dropped
    | _ :: p', [] -> go p' [] added (dropped + 1)
    | x :: p', y :: c' ->
      if x = y then go p' c' added dropped
      else if x < y then go p' c added (dropped + 1)
      else go p c' (added + 1) dropped
  in
  go prev cur 0 0

(* One "depth" telemetry event per solved instance; every engine that
   produces depth_stats routes them through here so the JSONL schema stays
   uniform. *)
let emit_depth_event tel (d : depth_stat) =
  if Telemetry.enabled tel then
    Telemetry.event tel "depth"
      [
        ("depth", Telemetry.Sink.Int d.depth);
        ("mode", Telemetry.Sink.Str (mode_string d.mode));
        ("outcome", Telemetry.Sink.Str (Sat.Solver.outcome_string d.outcome));
        ("build_s", Telemetry.Sink.Float d.build_time);
        ("solve_s", Telemetry.Sink.Float d.time);
        ("bcp_s", Telemetry.Sink.Float d.bcp_time);
        ("cdg_s", Telemetry.Sink.Float d.cdg_time);
        ("decisions", Telemetry.Sink.Int d.decisions);
        ("dec_rank", Telemetry.Sink.Int d.dec_rank);
        ("dec_vsids", Telemetry.Sink.Int d.dec_vsids);
        ("implications", Telemetry.Sink.Int d.implications);
        ("conflicts", Telemetry.Sink.Int d.conflicts);
        ("core_clauses", Telemetry.Sink.Int d.core_size);
        ("core_vars", Telemetry.Sink.Int d.core_var_count);
        ("core_new", Telemetry.Sink.Int d.core_new);
        ("core_dropped", Telemetry.Sink.Int d.core_dropped);
        ("core_pre", Telemetry.Sink.Int d.core_pre);
        ("coremin_s", Telemetry.Sink.Float d.coremin_time);
        ("switched", Telemetry.Sink.Bool d.switched);
        ("inpr_elim", Telemetry.Sink.Int d.inpr_elim);
        ("inpr_sub", Telemetry.Sink.Int d.inpr_subsumed);
        ("inpr_str", Telemetry.Sink.Int d.inpr_strengthened);
        ("inpr_probe_failed", Telemetry.Sink.Int d.inpr_probe_failed);
        ("inpr_s", Telemetry.Sink.Float d.inpr_time);
      ]

type policy =
  | Fresh
  | Persistent

let pp_policy ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Persistent -> Format.pp_print_string ppf "persistent"

let policy_of_string = function
  | "fresh" -> Some Fresh
  | "persistent" -> Some Persistent
  | _ -> None

(* The session side of learnt-clause sharing: translate between this
   session's SAT variables and the exchange's solver-independent packed
   (node, frame, sign) keys, in both directions through the session's own
   Varmap.

   Export: a clause is only offered when every literal maps to a
   non-negative circuit node — the reserved pseudo-nodes (activation
   literals, instance auxiliaries) are negative, so nothing instance-local
   can leave even if the solver's taint filter were bypassed.  Import uses
   [Varmap.peek] (never allocating): a clause mentioning a frame this
   session has not materialised is dropped and counted stale rather than
   dragging unknown variables into the solver. *)
let install_share solver unroll ep =
  let vm = Unroll.varmap unroll in
  let pack lits =
    let n = Array.length lits in
    let keys = Array.make n 0 in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let l = lits.(!i) in
      (match Varmap.key_of vm (Sat.Lit.var l) with
      | Some (node, frame)
        when node >= 0 && node < Share.Exchange.max_node && frame < Share.Exchange.max_frame
        ->
        keys.(!i) <-
          Share.Exchange.pack_lit ~node ~frame ~neg:(not (Sat.Lit.is_pos l))
      | Some _ | None -> ok := false);
      incr i
    done;
    if !ok then Some keys else None
  in
  let export lits ~lbd ~src_id =
    match pack lits with
    | Some keys -> ignore (Share.Exchange.publish ~src_id ep keys ~lbd : bool)
    | None -> ()
  in
  let import () =
    let acc = ref [] in
    ignore
      (Share.Exchange.drain ep (fun keys ~origin ->
           let n = Array.length keys in
           let rec build i lits =
             if i >= n then Some lits
             else begin
               let node, frame, neg = Share.Exchange.unpack_lit keys.(i) in
               match Varmap.peek vm ~node ~frame with
               | Some v -> build (i + 1) (Sat.Lit.make v (not neg) :: lits)
               | None -> None
             end
           in
           match build 0 [] with
           | Some lits -> acc := (lits, origin) :: !acc
           | None -> Share.Exchange.note_dropped ep 1));
    !acc
  in
  Sat.Solver.set_share solver ~max_size:(Share.Exchange.max_size ep)
    ~max_lbd:(Share.Exchange.max_lbd ep)
    ~export_budget:(Share.Exchange.restart_budget ep)
    ~tune:(fun () -> Share.Exchange.tune ep)
    ~export ~import

type t = {
  cfg : config;
  pol : policy;
  owner : int; (* id of the domain that created the session *)
  unroll : Unroll.t;
  sc : Score.t;
  share : Share.Exchange.endpoint option;
  learn_cores : bool;
  fold_cores : bool;
  with_proof : bool;
  solver : Sat.Solver.t option; (* the live solver, Persistent only *)
  mutable fresh_solver : Sat.Solver.t option; (* last per-instance solver, Fresh only *)
  mutable pending : Sat.Cnf.t option; (* the open instance's formula, Fresh only *)
  mutable act : Sat.Lit.t option; (* the open instance's activation literal *)
  mutable instance_k : int; (* depth of the open instance; -1 before the first *)
  mutable instance_open : bool;
  mutable loaded_frames : int; (* highest frame fed to the live solver *)
  mutable loaded_clauses : int;
  mutable aux_count : int; (* fresh_lit allocations, Persistent *)
  mutable build_acc : float; (* CPU seconds building the open instance *)
  mutable last_core : int list;
  mutable last_core_vars : Sat.Lit.var list;
  freeze_tbl : (Circuit.Netlist.node, unit) Hashtbl.t;
      (* nodes whose variables stay frozen at every frame: engines register
         the nodes their instance constraints revisit at old frames
         (induction's property / registers, LTL's atoms) *)
  mutable inpr_pending : Sat.Inprocess.stats;
      (* boundary-inprocessing counters accumulated since the last
         [solve_instance], folded into its depth_stat *)
  mutable heur_hooks : Sat.Solver.hooks option;
      (* a Custom mode's solver callbacks, built once per session so
         conflict tables and assumption statistics survive across depths *)
}

let create ?(policy = Persistent) ?constrain_init ?score ?(learn_cores = true)
    ?(fold_cores = true) ?share cfg netlist ~property =
  (* Sharing is Persistent-only: a Fresh instance bakes its (unguarded)
     property constraint into the formula itself, so the solver has no way
     to tell instance-local clauses apart and the taint filter cannot
     protect siblings. *)
  if share <> None && policy = Fresh then
    invalid_arg "Session.create: clause sharing requires the Persistent policy";
  let unroll = Unroll.create ~coi:cfg.coi ?constrain_init netlist ~property in
  let sc = match score with Some s -> s | None -> Score.create ~weighting:cfg.weighting () in
  let with_proof =
    learn_cores && (uses_cores cfg.mode || cfg.collect_cores || cfg.core_mode <> Core_fast)
  in
  let solver =
    match policy with
    | Persistent ->
      (* the exchange endpoint id doubles as the global solver id, so the
         proof shard's provenance matches what siblings record on import *)
      let solver_id =
        match share with Some ep -> Share.Exchange.endpoint_id ep | None -> 0
      in
      let s =
        Sat.Solver.create ~with_proof ~telemetry:cfg.telemetry ~solver_id (Sat.Cnf.create ())
      in
      (match cfg.restart_base with Some b -> Sat.Solver.set_restart_base s b | None -> ());
      (match cfg.recorder with Some r -> Sat.Solver.set_recorder s r | None -> ());
      (match share with Some ep -> install_share s unroll ep | None -> ());
      Some s
    | Fresh -> None
  in
  {
    cfg;
    pol = policy;
    owner = (Domain.self () :> int);
    unroll;
    sc;
    share;
    learn_cores;
    fold_cores;
    with_proof;
    solver;
    fresh_solver = None;
    pending = None;
    act = None;
    instance_k = -1;
    instance_open = false;
    loaded_frames = -1;
    loaded_clauses = 0;
    aux_count = 0;
    build_acc = 0.0;
    last_core = [];
    last_core_vars = [];
    freeze_tbl = Hashtbl.create 16;
    inpr_pending = Sat.Inprocess.fresh_stats ();
    heur_hooks = None;
  }

let policy t = t.pol

(* Sessions (and the solvers under them) are domain-confined: every
   instance-building or solving entry point must run on the domain that
   called [create].  The portfolio layer relies on this rule — each racer's
   session lives on one pinned pool worker — and violating it would race on
   the solver's mutable state, so it is an [Invalid_argument], not UB. *)
let assert_owner t what =
  if (Domain.self () :> int) <> t.owner then
    invalid_arg
      (Printf.sprintf "Session.%s: session is owned by domain %d, called from domain %d" what
         t.owner
         (Domain.self () :> int))

let unroll t = t.unroll

let score t = t.sc

let live_solver t =
  match t.solver with
  | Some s -> s
  | None -> assert false

let freeze_nodes t nodes =
  List.iter (fun n -> if n >= 0 then Hashtbl.replace t.freeze_tbl n ()) nodes

(* The freeze set for one depth-boundary inprocessing run, recomputed from
   the Varmap each time.  A variable survives elimination when future
   clauses can mention it again:
   - unmapped or activation-literal variables — conservatively frozen
     (retired activation literals are level-0-assigned anyway);
   - instance-local auxiliaries (pseudo-node [-2]) of retired instances —
     melted: nothing ever mentions them again, the prime BVE fodder;
   - circuit variables at the top loaded frame — frozen: the next frame's
     transition delta resolves against them;
   - variables of nodes an engine registered via {!freeze_nodes} — frozen
     at every frame (induction / LTL constraints revisit old frames);
   - everything frozen while clause sharing is on: an imported clause may
     mention any materialised (node, frame) variable. *)
let refresh_freeze t solver =
  let vm = Unroll.varmap t.unroll in
  let all_circuit_frozen = t.share <> None in
  for v = 0 to Varmap.num_vars vm - 1 do
    match Varmap.key_of vm v with
    | None -> Sat.Solver.freeze solver v
    | Some (node, _) when node = activation_node -> Sat.Solver.freeze solver v
    | Some (node, _) when node = aux_node -> Sat.Solver.melt solver v
    | Some (node, frame) ->
      if all_circuit_frozen || frame >= t.loaded_frames || Hashtbl.mem t.freeze_tbl node
      then Sat.Solver.freeze solver v
      else Sat.Solver.melt solver v
  done

let add_inpr_stats (acc : Sat.Inprocess.stats) (s : Sat.Inprocess.stats) =
  acc.Sat.Inprocess.probes <- acc.Sat.Inprocess.probes + s.Sat.Inprocess.probes;
  acc.probe_failed <- acc.probe_failed + s.probe_failed;
  acc.satisfied_removed <- acc.satisfied_removed + s.satisfied_removed;
  acc.subsumed <- acc.subsumed + s.subsumed;
  acc.strengthened <- acc.strengthened + s.strengthened;
  acc.eliminated <- acc.eliminated + s.eliminated;
  acc.resolvents <- acc.resolvents + s.resolvents;
  acc.rounds_run <- acc.rounds_run + s.rounds_run;
  acc.time <- acc.time +. s.time

let run_inprocess t solver icfg =
  refresh_freeze t solver;
  let st = Sat.Solver.inprocess ~config:icfg solver in
  add_inpr_stats t.inpr_pending st;
  let tel = t.cfg.telemetry in
  if Telemetry.enabled tel then begin
    let c name v = if v > 0 then Telemetry.counter tel ("inprocess." ^ name) v in
    c "eliminated" st.Sat.Inprocess.eliminated;
    c "subsumed" st.Sat.Inprocess.subsumed;
    c "strengthened" st.Sat.Inprocess.strengthened;
    c "satisfied" st.Sat.Inprocess.satisfied_removed;
    c "probe_failed" st.Sat.Inprocess.probe_failed;
    c "resolvents" st.Sat.Inprocess.resolvents
  end

let begin_instance ?frames t ~k =
  assert_owner t "begin_instance";
  let frames = match frames with Some f -> f | None -> k in
  if frames < k then invalid_arg "Session.begin_instance: frames < k";
  if t.pol = Persistent && k <= t.instance_k then
    invalid_arg "Session.begin_instance: depth must increase between instances";
  let tb = Sys.time () in
  t.build_acc <- 0.0;
  t.last_core <- [];
  t.last_core_vars <- [];
  (match t.pol with
  | Persistent ->
    let solver = live_solver t in
    (* retire the previous instance's constraints for good *)
    (match t.act with
    | Some act -> Sat.Solver.add_clause solver [ Sat.Lit.negate act ]
    | None -> ());
    t.act <- None;
    (* depth boundary: the retired instance's guard is a unit now, so its
       clauses are level-0-satisfied fodder and its auxiliaries are dead —
       simplify before the next frames' deltas arrive *)
    (match t.cfg.inprocess with
    | Some icfg when t.instance_k >= 0 -> run_inprocess t solver icfg
    | Some _ | None -> ());
    Unroll.extend_to t.unroll frames;
    (* feed only the deltas of frames the solver has not seen yet — each
       frame enters the clause database exactly once per session *)
    while t.loaded_frames < frames do
      t.loaded_frames <- t.loaded_frames + 1;
      Unroll.iter_delta t.unroll ~frame:t.loaded_frames (fun clause ->
          Sat.Solver.add_clause solver clause;
          t.loaded_clauses <- t.loaded_clauses + 1)
    done;
    let act = Varmap.var (Unroll.varmap t.unroll) ~node:activation_node ~frame:k in
    (* the guard is instance-local: taint every clause derived through it *)
    Sat.Solver.mark_local solver act;
    t.act <- Some (Sat.Lit.pos act)
  | Fresh ->
    t.fresh_solver <- None;
    t.pending <- Some (Unroll.base_cnf t.unroll ~k:frames));
  t.instance_k <- k;
  t.instance_open <- true;
  t.build_acc <- t.build_acc +. (Sys.time () -. tb)

let require_open t what = if not t.instance_open then invalid_arg ("Session." ^ what ^ ": no open instance")

let constrain t clause =
  assert_owner t "constrain";
  require_open t "constrain";
  let tb = Sys.time () in
  (match t.pol with
  | Persistent ->
    let act = match t.act with Some a -> a | None -> assert false in
    Sat.Solver.add_clause (live_solver t) (clause @ [ Sat.Lit.negate act ])
  | Fresh -> (
    match t.pending with
    | Some cnf -> Sat.Cnf.add_clause cnf clause
    | None -> assert false));
  t.build_acc <- t.build_acc +. (Sys.time () -. tb)

let fresh_lit t =
  assert_owner t "fresh_lit";
  require_open t "fresh_lit";
  match t.pol with
  | Persistent ->
    let frame = t.aux_count in
    t.aux_count <- t.aux_count + 1;
    let v = Varmap.var (Unroll.varmap t.unroll) ~node:aux_node ~frame in
    Sat.Solver.mark_local (live_solver t) v;
    Sat.Lit.pos v
  | Fresh -> (
    match t.pending with
    | Some cnf -> Sat.Lit.pos (Sat.Cnf.fresh_var cnf)
    | None -> assert false)

let var_of t ~node ~frame = Unroll.var_of t.unroll ~node ~frame

let instance_solver t =
  match t.pol with
  | Persistent -> live_solver t
  | Fresh -> (
    match t.fresh_solver with
    | Some s -> s
    | None -> invalid_arg "Session: instance not solved yet")

let solve_instance t =
  assert_owner t "solve_instance";
  require_open t "solve_instance";
  let cfg = t.cfg in
  let k = t.instance_k in
  let tb = Sys.time () in
  let solver, assumptions =
    match t.pol with
    | Persistent ->
      let solver = live_solver t in
      let mode = order_mode cfg t.unroll t.sc ~k in
      (match cfg.mode with
      | Custom { c_hooks = Some mk; _ } ->
        let hooks =
          match t.heur_hooks with
          | Some h -> h
          | None ->
            let h = mk t.unroll t.sc ~solver in
            t.heur_hooks <- Some h;
            h
        in
        Sat.Solver.set_order ~hooks solver mode
      | _ -> Sat.Solver.set_order solver mode);
      let act = match t.act with Some a -> a | None -> assert false in
      (solver, [ act ])
    | Fresh ->
      let cnf = match t.pending with Some c -> c | None -> assert false in
      let mode = order_mode cfg t.unroll t.sc ~k in
      let solver =
        Sat.Solver.create ~with_proof:t.with_proof ~mode ~telemetry:cfg.telemetry cnf
      in
      (* a Custom mode's hooks are per-solver, so a Fresh policy rebuilds
         them for every instance (no cross-depth heuristic state) *)
      (match cfg.mode with
      | Custom { c_hooks = Some mk; _ } ->
        Sat.Solver.set_order ~hooks:(mk t.unroll t.sc ~solver) solver mode
      | _ -> ());
      (match cfg.restart_base with
      | Some b -> Sat.Solver.set_restart_base solver b
      | None -> ());
      (match cfg.recorder with
      | Some r -> Sat.Solver.set_recorder solver r
      | None -> ());
      t.fresh_solver <- Some solver;
      (solver, [])
  in
  t.build_acc <- t.build_acc +. (Sys.time () -. tb);
  let cdg_before = Sat.Solver.cdg_seconds solver in
  let before = Sat.Stats.copy (Sat.Solver.stats solver) in
  let t0 = Sys.time () in
  let outcome = Sat.Solver.solve ~budget:cfg.budget ~assumptions solver in
  let time = Sys.time () -. t0 in
  let delta = stats_delta ~before ~after:(Sat.Solver.stats solver) in
  (match t.share with
  | Some ep ->
    Share.Exchange.note_rejected_tainted ep delta.Sat.Stats.shared_rejected_tainted;
    if delta.Sat.Stats.shared_exported > 0 then
      Telemetry.counter cfg.telemetry "share.exported" delta.Sat.Stats.shared_exported;
    if delta.Sat.Stats.shared_imported > 0 then
      Telemetry.counter cfg.telemetry "share.imported" delta.Sat.Stats.shared_imported;
    if delta.Sat.Stats.shared_rejected_tainted > 0 then
      Telemetry.counter cfg.telemetry "share.rejected_tainted"
        delta.Sat.Stats.shared_rejected_tainted;
    if delta.Sat.Stats.shared_throttled > 0 then
      Telemetry.counter cfg.telemetry "share.throttled" delta.Sat.Stats.shared_throttled;
    (* import-usefulness feedback: after an UNSAT answer, report how many
       imports the refutation actually leaned on — this drives the
       adaptive LBD cap ({!Share.Exchange.tune}) at the next restart *)
    (match outcome with
    | Sat.Solver.Unsat when t.with_proof ->
      Share.Exchange.note_import_used ep
        (List.length (Sat.Solver.unsat_core_imports solver))
    | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> ())
  | None -> ());
  let core, core_vars =
    match outcome with
    | Sat.Solver.Unsat when t.with_proof ->
      (Sat.Solver.unsat_core solver, Sat.Solver.core_vars solver)
    | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> ([], [])
  in
  (* Destructive minimisation ([Core_minimal]): re-solve the candidate core
     under clause-selector assumptions until no clause can be dropped (or
     the budget runs out).  Imported clauses reachable from the refutation
     ride along as extra candidates under negative ids, so the candidate is
     unsatisfiable even when sharing made an import load-bearing; the
     instance's activation literal is passed as an assumption.  Every
     minimised core is re-proved and checker-certified inside {!Sat.Coremin}. *)
  let core_pre = List.length core in
  let core, core_vars, coremin_time, coremin_certified =
    if cfg.core_mode <> Core_minimal || core = [] then (core, core_vars, 0.0, true)
    else begin
      let imports = Sat.Solver.unsat_core_imports solver in
      let candidates =
        List.map (fun i -> (i, Sat.Solver.original_clause solver i)) core
        @ List.mapi (fun j lits -> (-1 - j, lits)) imports
      in
      let kept, cm =
        Sat.Coremin.minimise ~budget:cfg.coremin_budget ~assumptions
          ~num_vars:(Sat.Solver.num_vars solver) ~clauses:candidates ()
      in
      if not cm.Sat.Coremin.certified then (core, core_vars, cm.Sat.Coremin.seconds, false)
      else begin
        let lits_of =
          let tbl = Hashtbl.create 64 in
          List.iter (fun (id, lits) -> Hashtbl.replace tbl id lits) candidates;
          Hashtbl.find tbl
        in
        let vtbl = Hashtbl.create 64 in
        List.iter
          (fun id ->
            List.iter (fun l -> Hashtbl.replace vtbl (Sat.Lit.var l) ()) (lits_of id))
          kept;
        let vars = Hashtbl.fold (fun v () acc -> v :: acc) vtbl [] |> List.sort Int.compare in
        let min_core = List.filter (fun id -> id >= 0) kept |> List.sort Int.compare in
        (min_core, vars, cm.Sat.Coremin.seconds, true)
      end
    end
  in
  (* Churn against the previous depth's core, before it is overwritten;
     only meaningful between consecutive unsat instances. *)
  let core_new, core_dropped =
    match outcome with
    | Sat.Solver.Unsat when t.with_proof -> core_churn ~prev:t.last_core_vars ~cur:core_vars
    | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> (0, 0)
  in
  t.last_core <- core;
  t.last_core_vars <- core_vars;
  (match outcome with
  | Sat.Solver.Unsat when t.fold_cores && t.learn_cores && uses_cores cfg.mode ->
    Score.update t.sc ~instance:k ~core_vars
  | Sat.Solver.Unsat | Sat.Solver.Sat | Sat.Solver.Unknown -> ());
  let stat =
    {
      depth = k;
      mode = cfg.mode;
      outcome;
      decisions = delta.Sat.Stats.decisions;
      dec_rank = delta.Sat.Stats.decisions_rank;
      dec_vsids = delta.Sat.Stats.decisions_vsids;
      implications = delta.Sat.Stats.propagations;
      conflicts = delta.Sat.Stats.conflicts;
      core_size = List.length core;
      core_var_count = List.length core_vars;
      core_new;
      core_dropped;
      core_pre;
      coremin_time;
      coremin_certified;
      switched = delta.Sat.Stats.heuristic_switches > 0;
      time;
      build_time = t.build_acc;
      bcp_time = delta.Sat.Stats.bcp_time;
      cdg_time = Sat.Solver.cdg_seconds solver -. cdg_before;
      inpr_elim = t.inpr_pending.Sat.Inprocess.eliminated;
      inpr_subsumed = t.inpr_pending.Sat.Inprocess.subsumed;
      inpr_strengthened = t.inpr_pending.Sat.Inprocess.strengthened;
      inpr_probe_failed = t.inpr_pending.Sat.Inprocess.probe_failed;
      inpr_time = t.inpr_pending.Sat.Inprocess.time;
    }
  in
  t.inpr_pending <- Sat.Inprocess.fresh_stats ();
  emit_depth_event cfg.telemetry stat;
  (match cfg.recorder with
  | Some r ->
    Obs.Recorder.record r Obs.Recorder.Depth ~a:k
      ~b:(match outcome with Sat.Solver.Unsat -> 0 | Sat.Solver.Sat -> 1 | Sat.Solver.Unknown -> 2)
  | None -> ());
  stat

let model t =
  assert_owner t "model";
  require_open t "model";
  Sat.Solver.model (instance_solver t)

let trace t = Trace.of_model t.unroll ~k:t.instance_k ~model:(model t)

let last_core t = t.last_core

let last_core_vars t = t.last_core_vars

let session_solver_opt t =
  match t.pol with Persistent -> t.solver | Fresh -> t.fresh_solver

let solver_id t =
  match session_solver_opt t with Some s -> Sat.Solver.solver_id s | None -> 0

(* The exact cross-solver core variables of the last UNSAT instance, in this
   session's variable numbering.  Walks the stitched proof across sibling
   shards ([siblings] resolves a session by its solver id) and remaps each
   foreign shard's core-clause variables through its Varmap keys into this
   session's Varmap.  Foreign core originals are always pure circuit clauses
   — the export filter releases nothing derived from instance-local
   variables — so every foreign variable carries a non-negative (node,
   frame) key.  Coordinator-only: call once every sibling has quiesced. *)
let exact_core_vars t ~siblings =
  match session_solver_opt t with
  | None -> t.last_core_vars
  | Some s ->
    if (not t.with_proof) || Sat.Solver.outcome_opt s <> Some Sat.Solver.Unsat then
      t.last_core_vars
    else begin
      let solver_of sess = session_solver_opt sess in
      let lookup sid = Option.bind (siblings sid) solver_of in
      match Sat.Solver.stitched_core s ~lookup with
      | exception Invalid_argument _ ->
        (* a shard could not be resolved (e.g. a proof-less sibling):
           fall back to the local projection rather than failing the race *)
        t.last_core_vars
      | shards ->
        let own_vm = Unroll.varmap t.unroll in
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (sid, idxs) ->
            if sid = Sat.Solver.solver_id s then
              List.iter
                (fun i ->
                  List.iter
                    (fun l -> Hashtbl.replace tbl (Sat.Lit.var l) ())
                    (Sat.Solver.original_clause s i))
                idxs
            else
              match Option.bind (siblings sid) (fun sib ->
                        Option.map (fun so -> (sib, so)) (solver_of sib))
              with
              | None -> ()
              | Some (sib, sib_solver) ->
                let sib_vm = Unroll.varmap sib.unroll in
                List.iter
                  (fun i ->
                    List.iter
                      (fun l ->
                        match Varmap.key_of sib_vm (Sat.Lit.var l) with
                        | Some (node, frame) when node >= 0 -> (
                          match Varmap.peek own_vm ~node ~frame with
                          | Some v -> Hashtbl.replace tbl v ()
                          | None -> ())
                        | Some _ | None -> ())
                      (Sat.Solver.original_clause sib_solver i))
                  idxs)
          shards;
        Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort Int.compare
    end

let loaded_clauses t = t.loaded_clauses

let solver_stats t = Sat.Solver.stats (instance_solver t)

type verdict =
  | Falsified of Trace.t
  | Bounded_pass of int
  | Aborted of int

type result = {
  verdict : verdict;
  per_depth : depth_stat list;
  total_time : float;
  total_decisions : int;
  total_implications : int;
  total_conflicts : int;
}

let pp_verdict ppf = function
  | Falsified trace -> Format.fprintf ppf "falsified at depth %d" trace.Trace.depth
  | Bounded_pass k -> Format.fprintf ppf "no counterexample up to depth %d" k
  | Aborted k -> Format.fprintf ppf "aborted at depth %d (budget)" k

let solve_depth t ~k =
  let property = Unroll.property t.unroll in
  begin_instance t ~k;
  constrain t [ Sat.Lit.neg (var_of t ~node:property ~frame:k) ];
  solve_instance t

let check ?(config = default_config) ?share ~policy netlist ~property =
  let cfg = config in
  let t = create ~policy ?share cfg netlist ~property in
  let per_depth = ref [] in
  let start = Sys.time () in
  let finish verdict =
    let per_depth = List.rev !per_depth in
    let sum f = List.fold_left (fun acc d -> acc + f d) 0 per_depth in
    {
      verdict;
      per_depth;
      total_time = Sys.time () -. start;
      total_decisions = sum (fun d -> d.decisions);
      total_implications = sum (fun d -> d.implications);
      total_conflicts = sum (fun d -> d.conflicts);
    }
  in
  let rec loop k =
    if k > cfg.max_depth then finish (Bounded_pass cfg.max_depth)
    else begin
      begin_instance t ~k;
      constrain t [ Sat.Lit.neg (var_of t ~node:property ~frame:k) ];
      let stat = solve_instance t in
      per_depth := stat :: !per_depth;
      match stat.outcome with
      | Sat.Solver.Sat ->
        let tr = trace t in
        if not (Trace.replay tr netlist ~property) then
          failwith
            (Printf.sprintf
               "Session.check: counterexample at depth %d failed to replay (internal error)" k);
        finish (Falsified tr)
      | Sat.Solver.Unsat -> loop (k + 1)
      | Sat.Solver.Unknown -> finish (Aborted k)
    end
  in
  loop 0
