(* Stable variable numbering. *)

let test_allocation_monotone () =
  let m = Bmc.Varmap.create () in
  let v0 = Bmc.Varmap.var m ~node:3 ~frame:0 in
  let v1 = Bmc.Varmap.var m ~node:7 ~frame:0 in
  let v2 = Bmc.Varmap.var m ~node:3 ~frame:1 in
  Alcotest.(check (list int)) "dense in allocation order" [ 0; 1; 2 ] [ v0; v1; v2 ];
  Alcotest.(check int) "count" 3 (Bmc.Varmap.num_vars m)

let test_stable_lookup () =
  let m = Bmc.Varmap.create () in
  let v = Bmc.Varmap.var m ~node:5 ~frame:2 in
  Alcotest.(check int) "same var on re-lookup" v (Bmc.Varmap.var m ~node:5 ~frame:2);
  Alcotest.(check int) "no extra allocation" 1 (Bmc.Varmap.num_vars m)

let test_peek () =
  let m = Bmc.Varmap.create () in
  Alcotest.(check (option int)) "absent" None (Bmc.Varmap.peek m ~node:1 ~frame:0);
  let v = Bmc.Varmap.var m ~node:1 ~frame:0 in
  Alcotest.(check (option int)) "present" (Some v) (Bmc.Varmap.peek m ~node:1 ~frame:0)

let test_reverse () =
  let m = Bmc.Varmap.create () in
  let v = Bmc.Varmap.var m ~node:9 ~frame:4 in
  Alcotest.(check (option (pair int int))) "key_of" (Some (9, 4)) (Bmc.Varmap.key_of m v);
  Alcotest.(check (option (pair int int))) "unknown var" None (Bmc.Varmap.key_of m 99)

let test_negative_frame () =
  let m = Bmc.Varmap.create () in
  Alcotest.check_raises "negative frame" (Invalid_argument "Varmap.var: negative frame")
    (fun () -> ignore (Bmc.Varmap.var m ~node:0 ~frame:(-1)))

let prop_bijective =
  QCheck.Test.make ~name:"forward and reverse maps agree" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 20) (int_bound 10)))
    (fun keys ->
      let m = Bmc.Varmap.create () in
      List.for_all
        (fun (node, frame) ->
          let v = Bmc.Varmap.var m ~node ~frame in
          Bmc.Varmap.key_of m v = Some (node, frame))
        keys)

let tests =
  [
    Alcotest.test_case "monotone allocation" `Quick test_allocation_monotone;
    Alcotest.test_case "stable lookup" `Quick test_stable_lookup;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "negative frame" `Quick test_negative_frame;
    QCheck_alcotest.to_alcotest prop_bijective;
  ]
