test/test_luby.ml: Alcotest List Printf QCheck QCheck_alcotest Sat
