test/test_trace.ml: Alcotest Array Bmc Circuit Format List String
