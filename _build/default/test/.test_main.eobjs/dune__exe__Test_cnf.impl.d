test/test_cnf.ml: Alcotest Array Gen List QCheck QCheck_alcotest Sat
