type mode =
  | Vsids
  | Static of float array
  | Dynamic of float array

type t = {
  mutable num_vars : int;
  mutable act : float array; (* per literal index *)
  mutable rank : float array; (* per variable *)
  mutable use_rank : bool;
  mutable dynamic : bool;
  (* indexed binary max-heap over literal indices *)
  mutable heap : int array;
  mutable heap_len : int;
  mutable pos : int array; (* literal index -> heap slot, -1 if absent *)
}

let create ~num_vars mode =
  if num_vars < 0 then invalid_arg "Order.create";
  let nlits = 2 * num_vars in
  let rank = Array.make (max num_vars 1) 0.0 in
  let use_rank, dynamic =
    match mode with
    | Vsids -> (false, false)
    | Static r ->
      Array.blit r 0 rank 0 (min (Array.length r) num_vars);
      (true, false)
    | Dynamic r ->
      Array.blit r 0 rank 0 (min (Array.length r) num_vars);
      (true, true)
  in
  {
    num_vars;
    act = Array.make (max nlits 1) 0.0;
    rank;
    use_rank;
    dynamic;
    heap = Array.make (max nlits 1) (-1);
    heap_len = 0;
    pos = Array.make (max nlits 1) (-1);
  }

let mode_uses_rank t = t.use_rank

let is_dynamic t = t.dynamic

let init_activity t cnf =
  Cnf.iter_clauses
    (fun _ c ->
      Array.iter
        (fun l ->
          let i = Lit.to_index l in
          t.act.(i) <- t.act.(i) +. 1.0)
        c)
    cnf

(* Decision key: (rank of variable, literal activity, literal index) when the
   rank component is active, else (activity, literal index).  [gt a b] holds
   when literal [a] must sit above [b] in the max-heap. *)
let gt t a b =
  if t.use_rank then begin
    let ra = t.rank.(a lsr 1) and rb = t.rank.(b lsr 1) in
    if ra <> rb then ra > rb
    else if t.act.(a) <> t.act.(b) then t.act.(a) > t.act.(b)
    else a < b
  end
  else if t.act.(a) <> t.act.(b) then t.act.(a) > t.act.(b)
  else a < b

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if gt t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_len && gt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_len && gt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let insert t lit_idx =
  if t.pos.(lit_idx) < 0 then begin
    let i = t.heap_len in
    t.heap.(i) <- lit_idx;
    t.pos.(lit_idx) <- i;
    t.heap_len <- i + 1;
    sift_up t i
  end

let rebuild t ~is_unassigned =
  Array.fill t.pos 0 (Array.length t.pos) (-1);
  t.heap_len <- 0;
  for v = 0 to t.num_vars - 1 do
    if is_unassigned v then begin
      (* bulk fill, heapify below *)
      let p = Lit.to_index (Lit.pos v) and n = Lit.to_index (Lit.neg v) in
      t.heap.(t.heap_len) <- p;
      t.pos.(p) <- t.heap_len;
      t.heap_len <- t.heap_len + 1;
      t.heap.(t.heap_len) <- n;
      t.pos.(n) <- t.heap_len;
      t.heap_len <- t.heap_len + 1
    end
  done;
  for i = (t.heap_len / 2) - 1 downto 0 do
    sift_down t i
  done

let bump t l =
  let i = Lit.to_index l in
  t.act.(i) <- t.act.(i) +. 1.0;
  if t.pos.(i) >= 0 then sift_up t t.pos.(i)

(* Halving every key preserves the heap order, so no restructuring. *)
let halve_all t =
  for i = 0 to Array.length t.act - 1 do
    t.act.(i) <- t.act.(i) *. 0.5
  done

let on_unassign t v =
  insert t (Lit.to_index (Lit.pos v));
  insert t (Lit.to_index (Lit.neg v))

let pop_best t ~is_unassigned =
  let rec loop () =
    if t.heap_len = 0 then None
    else begin
      let top = t.heap.(0) in
      t.heap_len <- t.heap_len - 1;
      t.pos.(top) <- -1;
      if t.heap_len > 0 then begin
        let moved = t.heap.(t.heap_len) in
        t.heap.(0) <- moved;
        t.pos.(moved) <- 0;
        sift_down t 0
      end;
      let l = Lit.of_index top in
      if is_unassigned (Lit.var l) then Some l else loop ()
    end
  in
  loop ()

let switch_to_vsids t =
  if t.use_rank then begin
    t.use_rank <- false;
    (* Re-heapify the surviving entries under the new key. *)
    for i = (t.heap_len / 2) - 1 downto 0 do
      sift_down t i
    done
  end

let activity t l = t.act.(Lit.to_index l)

let rank_of t v = t.rank.(v)

let decided_by_rank t v = t.use_rank && t.rank.(v) > 0.0

let grow t ~num_vars =
  if num_vars > t.num_vars then begin
    (* Grow capacity geometrically: callers add variables one at a time
       (incremental clause loading), and exact-fit reallocation there is
       quadratic.  Capacity is the smaller of the per-variable and
       per-literal array allowances; the logical size stays [t.num_vars]. *)
    let capacity = min (Array.length t.rank) (Array.length t.pos / 2) in
    if num_vars > capacity then begin
      let cap = max (2 * capacity) num_vars in
      let nlits = max (2 * cap) 1 in
      let copy_into src size init =
        let dst = Array.make size init in
        Array.blit src 0 dst 0 (Array.length src);
        dst
      in
      t.act <- copy_into t.act nlits 0.0;
      t.rank <- copy_into t.rank (max cap 1) 0.0;
      t.pos <- copy_into t.pos nlits (-1);
      let heap = Array.make nlits (-1) in
      Array.blit t.heap 0 heap 0 t.heap_len;
      t.heap <- heap
    end;
    t.num_vars <- num_vars
  end

(* Install a fresh per-variable ranking (and mode) for the next solve call;
   the caller is expected to rebuild the heap afterwards. *)
let set_mode t mode =
  (match mode with
  | Vsids ->
    Array.fill t.rank 0 (Array.length t.rank) 0.0;
    t.use_rank <- false;
    t.dynamic <- false
  | Static r | Dynamic r ->
    Array.fill t.rank 0 (Array.length t.rank) 0.0;
    Array.blit r 0 t.rank 0 (min (Array.length r) t.num_vars);
    t.use_rank <- true;
    t.dynamic <- (match mode with Dynamic _ -> true | Vsids | Static _ -> false));
  (* stale heap order: callers rebuild before popping *)
  ()

let bump_by t l amount =
  let i = Lit.to_index l in
  t.act.(i) <- t.act.(i) +. amount;
  if t.pos.(i) >= 0 then sift_up t t.pos.(i)

(* Point update of one variable's rank while the heap is live.  Unlike
   [bump], a rank may fall as well as rise, so each of the variable's two
   heap entries gets a sift in both directions (one of the two is a no-op). *)
let set_rank t v r =
  if v >= 0 && v < t.num_vars then begin
    t.rank.(v) <- r;
    if t.use_rank then
      List.iter
        (fun i ->
          let p = t.pos.(i) in
          if p >= 0 then begin
            sift_up t p;
            sift_down t t.pos.(i)
          end)
        [ Lit.to_index (Lit.pos v); Lit.to_index (Lit.neg v) ]
  end
