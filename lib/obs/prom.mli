(** Prometheus textfile export for the future service layer.

    Renders a {!Ledger.t} in the node-exporter textfile-collector format:
    drop the output in a [*.prom] file under the collector's directory and
    every metric below appears with a [bmc_] prefix — depth outcomes,
    decision-source split, restarts, fallback switches, core churn, race
    wins and sharing flow. *)

val render : Ledger.t -> string
(** The full textfile document ([# HELP] / [# TYPE] / sample lines). *)

val write : Ledger.t -> string -> unit
(** [write t path] renders to [path] (truncating). *)
