(* Service layer: wire protocol, the digest-keyed warm-session cache, and
   the warm = cold equivalence the cache must preserve.

   The engine runs in-process here (no sockets): tests are the front-end
   thread, workers are real pool domains, so the completion-queue
   handshake is exercised exactly as bmcserve drives it. *)

module P = Serve.Protocol
module S = Serve.Server

let mk_request ?(id = "t") ?mode ?deadline_ms ?(stats = false) src depth =
  {
    P.rq_id = id;
    rq_src = src;
    rq_depth = depth;
    rq_mode = mode;
    rq_deadline_ms = deadline_ms;
    rq_stats = stats;
  }

let inline_of (case : Circuit.Generators.case) =
  P.Inline (Circuit.Textio.to_string case.netlist ~property:case.property)

let with_engine ?jobs ?max_pending ?share ?max_conflicts ?ledger f =
  let cfg =
    S.make_config ?jobs ?max_pending ?share ?max_conflicts ?ledger
      ~mode:Bmc.Session.Dynamic ()
  in
  let t = S.create cfg in
  Fun.protect ~finally:(fun () -> S.shutdown t) (fun () -> f t)

let answer rs =
  match rs.P.rs_reply with
  | P.Answer b -> b
  | P.Shed -> Alcotest.fail "request was shed"
  | P.Draining -> Alcotest.fail "request hit a draining server"
  | P.Bad_request msg -> Alcotest.failf "bad request: %s" msg

let cache_of rs = (answer rs).P.rs_cache

let check_cache what want rs =
  Alcotest.(check string) what (P.cache_class_string want)
    (P.cache_class_string (cache_of rs))

(* ------------------------------------------------------------------ *)
(* Protocol codec.                                                     *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let rq =
    mk_request ~id:"r1" ~mode:Bmc.Session.Static ~deadline_ms:250.0 ~stats:true
      (P.Builtin "ring12") 9
  in
  match P.request_of_line (P.request_line rq) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok rq' ->
    Alcotest.(check string) "id" rq.P.rq_id rq'.P.rq_id;
    Alcotest.(check int) "depth" rq.P.rq_depth rq'.P.rq_depth;
    Alcotest.(check bool) "stats" rq.P.rq_stats rq'.P.rq_stats;
    Alcotest.(check bool) "mode" true (rq'.P.rq_mode = Some Bmc.Session.Static);
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 250.0) rq'.P.rq_deadline_ms

let test_request_rejects_garbage () =
  List.iter
    (fun line ->
      match P.request_of_line line with
      | Ok _ -> Alcotest.failf "expected rejection of %S" line
      | Error msg -> Alcotest.(check bool) "has message" true (String.length msg > 0))
    [
      "not json";
      "[1,2]";
      "{\"id\":\"x\"}" (* no circuit, no depth *);
      "{\"builtin\":\"a\",\"circuit\":\"b\",\"depth\":1}" (* both sources *);
      "{\"builtin\":\"a\",\"depth\":-1}";
      "{\"builtin\":\"a\",\"depth\":1,\"mode\":\"warp\"}";
    ]

let test_response_roundtrip () =
  let body =
    {
      P.rs_verdict = P.Bounded_pass 7;
      rs_cache = P.Warm;
      rs_solved = 3;
      rs_decisions = 41;
      rs_conflicts = 17;
      rs_core = [ 2; 5; 9 ];
    }
  in
  let rs = { P.rs_id = "r2"; rs_reply = P.Answer body; rs_queue_ms = 1.5; rs_wall_ms = 9.25 } in
  match P.response_of_json (P.response_to_json rs) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok rs' ->
    Alcotest.(check string) "id" "r2" rs'.P.rs_id;
    let b = answer rs' in
    Alcotest.(check bool) "verdict" true (b.P.rs_verdict = P.Bounded_pass 7);
    Alcotest.(check string) "cache" "warm" (P.cache_class_string b.P.rs_cache);
    Alcotest.(check (list int)) "core" [ 2; 5; 9 ] b.P.rs_core;
    Alcotest.(check int) "solved" 3 b.P.rs_solved

(* ------------------------------------------------------------------ *)
(* Warm = cold equivalence.                                            *)
(* ------------------------------------------------------------------ *)

(* Reference answer: the same depth sweep the server's job runs, on a
   session built the way the server builds one.  The circuit goes through
   the same print/parse round-trip the request takes, so node numbering —
   and with it SAT variable numbering and core-variable lists — lines up
   with what the server solves. *)
let reference (case : Circuit.Generators.case) depth =
  let netlist, property =
    Circuit.Textio.parse_string
      (Circuit.Textio.to_string case.netlist ~property:case.property)
  in
  let cfg =
    Bmc.Session.make_config ~mode:Bmc.Session.Dynamic ~collect_cores:true
      ~max_depth:depth ()
  in
  let s = Bmc.Session.create cfg netlist ~property in
  let rec go k =
    if k > depth then (P.Bounded_pass depth, Bmc.Session.last_core_vars s)
    else
      let st = Bmc.Session.solve_depth s ~k in
      match st.Bmc.Session.outcome with
      | Sat.Solver.Sat ->
        let tr = Bmc.Session.trace s in
        (P.Falsified (k, P.trace_to_json netlist tr), [])
      | Sat.Solver.Unsat -> go (k + 1)
      | Sat.Solver.Unknown -> (P.Aborted k, [])
  in
  go 0

let same_verdict what want got =
  match (want, got) with
  | P.Falsified (dw, tw), P.Falsified (dg, tg) ->
    Alcotest.(check int) (what ^ ": failure depth") dw dg;
    Alcotest.(check string)
      (what ^ ": counterexample trace")
      (Obs.Json.to_string tw) (Obs.Json.to_string tg)
  | P.Bounded_pass dw, P.Bounded_pass dg -> Alcotest.(check int) (what ^ ": bound") dw dg
  | P.Aborted dw, P.Aborted dg -> Alcotest.(check int) (what ^ ": abort depth") dw dg
  | _ -> Alcotest.failf "%s: verdict shapes differ" what

let test_cold_hit_warm_equivalence () =
  (* one circuit that holds within the budget, one that fails inside it *)
  List.iter
    (fun ((case : Circuit.Generators.case), depth) ->
      let want, want_core = reference case depth in
      with_engine (fun t ->
          let rs1 = S.check_now t (mk_request ~stats:true (inline_of case) depth) in
          check_cache "first request is a miss" P.Miss rs1;
          same_verdict "cold vs session" want (answer rs1).P.rs_verdict;
          Alcotest.(check (list int)) "cold core" want_core (answer rs1).P.rs_core;
          (* the repeat is answered from the memo, no solver work at all *)
          let rs2 = S.check_now t (mk_request ~stats:true (inline_of case) depth) in
          check_cache "repeat is a hit" P.Hit rs2;
          Alcotest.(check int) "hit does not solve" 0 (answer rs2).P.rs_solved;
          same_verdict "hit vs cold" want (answer rs2).P.rs_verdict;
          Alcotest.(check (list int)) "hit core" want_core (answer rs2).P.rs_core))
    [
      (Circuit.Generators.ring ~len:6 ~noise:4 (), 5);
      (Circuit.Generators.counter ~bits:3 ~target:5 ~noise:2 (), 8);
    ]

let test_warm_extension_matches_cold () =
  let case = Circuit.Generators.ring ~len:8 ~noise:8 () in
  let d0 = 4 and d1 = 7 in
  let want, want_core = reference case d1 in
  with_engine (fun t ->
      let rs1 = S.check_now t (mk_request (inline_of case) d0) in
      check_cache "first request is a miss" P.Miss rs1;
      (* deepening resumes the warm session at d0+1 ... *)
      let rs2 = S.check_now t (mk_request ~stats:true (inline_of case) d1) in
      check_cache "extension is warm" P.Warm rs2;
      Alcotest.(check int) "solved only the new depths" (d1 - d0) (answer rs2).P.rs_solved;
      (* ... and lands exactly where a cold sweep to d1 lands *)
      same_verdict "warm vs cold" want (answer rs2).P.rs_verdict;
      Alcotest.(check (list int)) "warm core" want_core (answer rs2).P.rs_core)

let test_falsified_memo_and_shallower_bound () =
  let case = Circuit.Generators.counter ~bits:3 ~target:4 ~noise:0 () in
  let fails_at =
    match case.expect with
    | Some (Circuit.Generators.Fails_at f) -> f
    | _ -> Alcotest.fail "generator no longer predicts a failure"
  in
  with_engine (fun t ->
      let deep = fails_at + 3 in
      let rs1 = S.check_now t (mk_request (inline_of case) deep) in
      (match (answer rs1).P.rs_verdict with
      | P.Falsified (d, _) -> Alcotest.(check int) "failure depth" fails_at d
      | _ -> Alcotest.fail "expected a counterexample");
      (* a falsified property stays falsified: any budget that reaches the
         failure depth is answered from the memo *)
      let rs2 = S.check_now t (mk_request (inline_of case) deep) in
      check_cache "falsified repeat is a hit" P.Hit rs2;
      (* a budget short of the failure depth is a bounded pass — the depths
         below the failure were proved UNSAT on the way there *)
      let shallow = fails_at - 1 in
      let rs3 = S.check_now t (mk_request (inline_of case) shallow) in
      check_cache "shallower bound is a hit" P.Hit rs3;
      match (answer rs3).P.rs_verdict with
      | P.Bounded_pass d -> Alcotest.(check int) "bound is the request's" shallow d
      | _ -> Alcotest.fail "expected a bounded pass")

(* ------------------------------------------------------------------ *)
(* Deadlines, admission control, drain.                                *)
(* ------------------------------------------------------------------ *)

let test_deadline_aborts_then_cold_recovers () =
  let case = Circuit.Generators.ring ~len:10 ~noise:16 () in
  with_engine (fun t ->
      (* an already-expired deadline: the stop hook fires on the first
         solver step, the instance aborts, the entry is invalidated *)
      let rs1 = S.check_now t (mk_request ~deadline_ms:0.0 (inline_of case) 8) in
      (match (answer rs1).P.rs_verdict with
      | P.Aborted _ -> ()
      | _ -> Alcotest.fail "expected a deadline abort");
      (* the aborted instance cannot be re-solved (depths must increase), so
         the next request must rebuild cold — and succeed *)
      let rs2 = S.check_now t (mk_request (inline_of case) 6) in
      check_cache "post-abort request rebuilds cold" P.Miss rs2;
      match (answer rs2).P.rs_verdict with
      | P.Bounded_pass 6 -> ()
      | _ -> Alcotest.fail "post-abort request must complete")

let test_shed_when_saturated () =
  with_engine ~max_pending:0 (fun t ->
      let got = ref None in
      S.submit t ~respond:(fun rs -> got := Some rs) (mk_request (P.Builtin "ring12") 4);
      match !got with
      | Some { P.rs_reply = P.Shed; _ } -> ()
      | _ -> Alcotest.fail "expected synchronous shed at max_pending=0")

let test_bad_requests_answered_inline () =
  with_engine (fun t ->
      let expect_error rq =
        let got = ref None in
        S.submit t ~respond:(fun rs -> got := Some rs) rq;
        match !got with
        | Some { P.rs_reply = P.Bad_request _; _ } -> ()
        | _ -> Alcotest.fail "expected a synchronous error"
      in
      expect_error (mk_request (P.Builtin "no-such-circuit") 4);
      expect_error (mk_request (P.Inline "gibberish netlist") 4);
      (* the depth cap (default 64) bounds the work a request can demand *)
      expect_error (mk_request (P.Builtin "ring12") 1000))

let test_drain_answers_everything () =
  let ledger = ref [] in
  let case = Circuit.Generators.ring ~len:6 ~noise:4 () in
  with_engine ~jobs:2 ~ledger:(fun j -> ledger := j :: !ledger) (fun t ->
      let answered = ref 0 in
      let respond _ = incr answered in
      for i = 0 to 5 do
        S.submit t ~respond (mk_request ~id:(string_of_int i) (inline_of case) (3 + (i mod 3)))
      done;
      S.begin_drain t;
      (* admission is closed the instant the drain begins *)
      let late = ref None in
      S.submit t ~respond:(fun rs -> late := Some rs) (mk_request (inline_of case) 3);
      (match !late with
      | Some { P.rs_reply = P.Draining; _ } -> ()
      | _ -> Alcotest.fail "late request must be refused as draining");
      S.drain t;
      Alcotest.(check int) "every admitted request answered" 6 !answered;
      Alcotest.(check int) "nothing left pending" 0 (S.pending t);
      (* every response is ledgered — the six verdicts and the refusal *)
      Alcotest.(check int) "ledger lines" 7 (List.length !ledger);
      let status s =
        List.length
          (List.filter (fun j -> Obs.Json.get_str ~default:"" j "status" = s) !ledger)
      in
      Alcotest.(check int) "ok lines" 6 (status "ok");
      Alcotest.(check int) "draining line" 1 (status "draining");
      List.iter
        (fun j ->
          if Obs.Json.get_str ~default:"" j "status" = "ok" then
            Alcotest.(check bool) "ledger has a digest" true
              (Obs.Json.member "digest" j <> None))
        !ledger)

(* ------------------------------------------------------------------ *)
(* Parallel serving with clause sharing.                               *)
(* ------------------------------------------------------------------ *)

let test_share_two_parses_one_exchange () =
  (* two separately-parsed copies of one circuit: digest-keyed identity
     must give them the same cache entry and (with sharing on) the same
     exchange — and the answers must match the sequential reference *)
  let case = Circuit.Generators.lfsr ~width:8 ~noise:8 () in
  let depth = 7 in
  let want, _ = reference case depth in
  List.iter
    (fun share ->
      with_engine ~jobs:2 ~share (fun t ->
          let rs1 = S.check_now t (mk_request ~id:"p1" (inline_of case) depth) in
          let rs2 = S.check_now t (mk_request ~id:"p2" (inline_of case) depth) in
          check_cache "first parse is a miss" P.Miss rs1;
          check_cache "second parse hits the same entry" P.Hit rs2;
          same_verdict
            (Printf.sprintf "share=%b vs session" share)
            want (answer rs1).P.rs_verdict;
          same_verdict "hit answer" want (answer rs2).P.rs_verdict))
    [ false; true ]

let test_modes_are_distinct_entries () =
  (* same circuit, different requested orderings: distinct sessions, both
     correct *)
  let case = Circuit.Generators.gray ~bits:4 ~noise:4 () in
  let depth = 6 in
  let want, _ = reference case depth in
  with_engine ~jobs:2 (fun t ->
      let rs_dyn =
        S.check_now t (mk_request ~id:"dyn" ~mode:Bmc.Session.Dynamic (inline_of case) depth)
      in
      let rs_sta =
        S.check_now t (mk_request ~id:"sta" ~mode:Bmc.Session.Static (inline_of case) depth)
      in
      check_cache "dynamic is a miss" P.Miss rs_dyn;
      check_cache "static is its own entry" P.Miss rs_sta;
      same_verdict "dynamic" want (answer rs_dyn).P.rs_verdict;
      match ((answer rs_sta).P.rs_verdict, want) with
      | P.Bounded_pass a, P.Bounded_pass b -> Alcotest.(check int) "static bound" b a
      | P.Falsified (a, _), P.Falsified (b, _) -> Alcotest.(check int) "static depth" b a
      | _ -> Alcotest.fail "static and dynamic verdicts diverge")

let tests =
  [
    Alcotest.test_case "request line round-trips" `Quick test_request_roundtrip;
    Alcotest.test_case "malformed requests rejected" `Quick test_request_rejects_garbage;
    Alcotest.test_case "response json round-trips" `Quick test_response_roundtrip;
    Alcotest.test_case "cold and hit match a session" `Quick test_cold_hit_warm_equivalence;
    Alcotest.test_case "warm extension = cold sweep" `Quick test_warm_extension_matches_cold;
    Alcotest.test_case "falsified memo and shallower bounds" `Quick
      test_falsified_memo_and_shallower_bound;
    Alcotest.test_case "deadline abort invalidates, cold recovers" `Quick
      test_deadline_aborts_then_cold_recovers;
    Alcotest.test_case "saturated server sheds" `Quick test_shed_when_saturated;
    Alcotest.test_case "bad requests answered inline" `Quick test_bad_requests_answered_inline;
    Alcotest.test_case "drain answers everything, ledgers it" `Quick
      test_drain_answers_everything;
    Alcotest.test_case "two parses share one entry (jobs=2, +share)" `Quick
      test_share_two_parses_one_exchange;
    Alcotest.test_case "modes get distinct entries" `Quick test_modes_are_distinct_entries;
  ]
