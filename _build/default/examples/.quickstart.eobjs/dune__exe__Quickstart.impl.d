examples/quickstart.ml: Bmc Circuit Format List Sat
