(* Every verification engine in the repository, pointed at one problem.

   The circuit is a token ring wrapped in property-irrelevant noise — small
   enough that each engine answers quickly, large enough (2^36 raw states)
   that explicit enumeration of the full design is out of the question.

     dune exec examples/engines_tour.exe
*)

let () =
  let case = Circuit.Generators.ring ~len:10 ~noise:24 () in
  let nl = case.netlist in
  let property = case.property in
  Format.printf "circuit: %s — %d registers, %d nodes; property: at most one token@.@."
    case.name
    (List.length (Circuit.Netlist.regs nl))
    (Circuit.Netlist.num_nodes nl);

  let time f =
    let t0 = Sys.time () in
    let v = f () in
    (v, Sys.time () -. t0)
  in
  let row name (answer, dt) = Format.printf "  %-34s %-46s %6.3fs@." name answer dt in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:16 () in

  row "BMC (refined dynamic ordering)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Engine.pp_verdict (Bmc.Engine.run ~config nl ~property).verdict));
  row "incremental BMC (clause reuse)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Engine.pp_verdict
           (Bmc.Incremental.run ~config nl ~property).verdict));
  row "k-induction (simple path)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Induction.pp_verdict
           (Bmc.Induction.prove ~config ~simple_path:true nl ~property).verdict));
  row "proof-based abstraction (cores)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Abstraction.pp_verdict
           (Bmc.Abstraction.prove ~config nl ~property).verdict));
  row "symbolic reachability (BDDs)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Symbolic.pp_verdict (Bmc.Symbolic.check nl ~property)));
  row "interpolation (McMillan 2003)"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Interpolation.pp_verdict
           (Bmc.Interpolation.prove nl ~property).verdict));
  row "IC3 / PDR"
    (time (fun () ->
         Format.asprintf "%a" Bmc.Pdr.pp_verdict (Bmc.Pdr.prove nl ~property).verdict));
  row "bounded LTL (G property)"
    (time (fun () ->
         match (Bmc.Ltl.check ~config nl (Bmc.Ltl.always (Bmc.Ltl.atom property))).verdict with
         | Bmc.Ltl.Falsified w -> Printf.sprintf "falsified at depth %d" w.depth
         | Bmc.Ltl.Bounded_pass k -> Printf.sprintf "no counterexample up to depth %d" k
         | Bmc.Ltl.Aborted k -> Printf.sprintf "aborted at depth %d" k));

  Format.printf
    "@.The bounded engines report a depth-limited pass; induction, abstraction,@.\
     interpolation and IC3 close the argument with unbounded proofs; the BDD@.\
     engine agrees through an entirely different technology.  All of them@.\
     share the circuit substrate, and the SAT-based ones share the refined@.\
     decision ordering.@."
