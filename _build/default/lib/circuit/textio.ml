exception Parse_error of string

let fail lineno fmt =
  Format.kasprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" lineno s)))
    fmt

type decl =
  | Dinput of string
  | Dconst of string * bool
  | Dnot of string * string
  | Dand of string * string * string
  | Dor of string * string * string
  | Dxor of string * string * string
  | Dmux of string * string * string * string
  | Dreg of string * bool option
  | Dnext of string * string
  | Dprop of string

let parse_line lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> None
  | [ "input"; n ] -> Some (Dinput n)
  | [ "const"; n; "0" ] -> Some (Dconst (n, false))
  | [ "const"; n; "1" ] -> Some (Dconst (n, true))
  | [ "not"; n; a ] -> Some (Dnot (n, a))
  | [ "and"; n; a; b ] -> Some (Dand (n, a, b))
  | [ "or"; n; a; b ] -> Some (Dor (n, a, b))
  | [ "xor"; n; a; b ] -> Some (Dxor (n, a, b))
  | [ "mux"; n; s; h; l ] -> Some (Dmux (n, s, h, l))
  | [ "reg"; n; "init"; "0" ] -> Some (Dreg (n, Some false))
  | [ "reg"; n; "init"; "1" ] -> Some (Dreg (n, Some true))
  | [ "reg"; n; "init"; "x" ] -> Some (Dreg (n, None))
  | [ "next"; r; s ] -> Some (Dnext (r, s))
  | [ "prop"; n ] -> Some (Dprop n)
  | w :: _ -> fail lineno "unrecognised declaration %S" w

let decl_name = function
  | Dinput n | Dconst (n, _) | Dnot (n, _) | Dand (n, _, _) | Dor (n, _, _)
  | Dxor (n, _, _) | Dmux (n, _, _, _) | Dreg (n, _) ->
    Some n
  | Dnext _ | Dprop _ -> None

let build decls =
  let nl = Netlist.create () in
  (* Pass 1: create a node for every named declaration.  Gates are created
     as placeholders via fresh inputs?  No — we create in dependency-free
     order by deferring gate construction: first inputs/consts/regs, then
     repeatedly resolve gates whose operands exist.  Forward references
     among combinational gates are legal as long as the result is acyclic. *)
  let defined : (string, Netlist.node) Hashtbl.t = Hashtbl.create 64 in
  let define lineno name node =
    if Hashtbl.mem defined name then fail lineno "duplicate definition of %S" name;
    Hashtbl.replace defined name node
  in
  let check_fresh lineno name =
    if Hashtbl.mem defined name then fail lineno "duplicate definition of %S" name
  in
  List.iter
    (fun (lineno, d) ->
      match d with
      | Dinput n ->
        check_fresh lineno n;
        define lineno n (Netlist.input nl n)
      | Dconst (n, b) ->
        define lineno n (if b then Netlist.const_true nl else Netlist.const_false nl)
      | Dreg (n, init) ->
        check_fresh lineno n;
        define lineno n (Netlist.reg nl ~name:n ~init)
      | Dnot _ | Dand _ | Dor _ | Dxor _ | Dmux _ | Dnext _ | Dprop _ -> ())
    decls;
  (* Pass 2: build gates, iterating until a fixpoint (handles forward
     references); detect unresolvable (cyclic or undefined) leftovers. *)
  let pending = ref (List.filter (fun (_, d) -> decl_name d <> None) decls) in
  let progress = ref true in
  while !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun ((lineno, d) as item) ->
        let look n = Hashtbl.find_opt defined n in
        let binary f n a b =
          match (look a, look b) with
          | Some na, Some nb ->
            define lineno n (f nl na nb);
            true
          | None, _ | _, None -> false
        in
        let try_build () =
          match d with
          | Dinput _ | Dconst _ | Dreg _ -> true (* already created *)
          | Dnot (n, a) -> (
            match look a with
            | Some na ->
              define lineno n (Netlist.not_ nl na);
              true
            | None -> false)
          | Dand (n, a, b) -> binary Netlist.and_ n a b
          | Dor (n, a, b) -> binary Netlist.or_ n a b
          | Dxor (n, a, b) -> binary Netlist.xor_ n a b
          | Dmux (n, s, h, l) -> (
            match (look s, look h, look l) with
            | Some ns, Some nh, Some nlo ->
              define lineno n (Netlist.mux nl ~sel:ns ~hi:nh ~lo:nlo);
              true
            | _, _, _ -> false)
          | Dnext _ | Dprop _ -> true
        in
        if try_build () then progress := true else still := item :: !still)
      !pending;
    pending := List.rev !still
  done;
  (match !pending with
  | (lineno, d) :: _ ->
    let n = Option.value ~default:"?" (decl_name d) in
    fail lineno "cannot resolve %S (undefined operand or combinational cycle)" n
  | [] -> ());
  (* Pass 3: next and prop. *)
  let prop = ref None in
  List.iter
    (fun (lineno, d) ->
      match d with
      | Dnext (r, s) -> (
        match (Hashtbl.find_opt defined r, Hashtbl.find_opt defined s) with
        | Some nr, Some ns -> (
          match Netlist.gate nl nr with
          | Netlist.Reg _ -> (
            try Netlist.set_next nl nr ns
            with Invalid_argument _ -> fail lineno "next: register %S connected twice" r)
          | Netlist.Input _ | Netlist.Const _ | Netlist.Not _ | Netlist.And _
          | Netlist.Or _ | Netlist.Xor _ | Netlist.Mux _ ->
            fail lineno "next: %S is not a register" r)
        | None, _ -> fail lineno "next: unknown register %S" r
        | _, None -> fail lineno "next: unknown source %S" s)
      | Dprop n -> (
        if !prop <> None then fail lineno "duplicate prop declaration";
        match Hashtbl.find_opt defined n with
        | Some nn -> prop := Some nn
        | None -> fail lineno "prop: unknown node %S" n)
      | Dinput _ | Dconst _ | Dnot _ | Dand _ | Dor _ | Dxor _ | Dmux _ | Dreg _ -> ())
    decls;
  match !prop with
  | None -> raise (Parse_error "missing prop declaration")
  | Some p ->
    (match Netlist.validate nl with
    | Ok () -> (nl, p)
    | Error msg -> raise (Parse_error msg))

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let decls =
    List.mapi (fun i line -> (i + 1, parse_line (i + 1) line)) lines
    |> List.filter_map (fun (i, d) -> Option.map (fun d -> (i, d)) d)
  in
  build decls

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let node_name nl n =
  match Netlist.name_of nl n with Some s -> s | None -> Printf.sprintf "n%d" n

let print ppf nl ~property =
  let name = node_name nl in
  for n = 0 to Netlist.num_nodes nl - 1 do
    match Netlist.gate nl n with
    | Netlist.Input s -> Format.fprintf ppf "input %s@." s
    | Netlist.Const b -> Format.fprintf ppf "const %s %d@." (name n) (if b then 1 else 0)
    | Netlist.Not a -> Format.fprintf ppf "not %s %s@." (name n) (name a)
    | Netlist.And (a, b) -> Format.fprintf ppf "and %s %s %s@." (name n) (name a) (name b)
    | Netlist.Or (a, b) -> Format.fprintf ppf "or %s %s %s@." (name n) (name a) (name b)
    | Netlist.Xor (a, b) -> Format.fprintf ppf "xor %s %s %s@." (name n) (name a) (name b)
    | Netlist.Mux (s, h, l) ->
      Format.fprintf ppf "mux %s %s %s %s@." (name n) (name s) (name h) (name l)
    | Netlist.Reg _ ->
      let init =
        match Netlist.reg_init nl n with Some true -> "1" | Some false -> "0" | None -> "x"
      in
      Format.fprintf ppf "reg %s init %s@." (name n) init
  done;
  List.iter
    (fun r -> Format.fprintf ppf "next %s %s@." (name r) (name (Netlist.reg_next nl r)))
    (Netlist.regs nl);
  Format.fprintf ppf "prop %s@." (name property)

let to_string nl ~property = Format.asprintf "%a" (fun ppf () -> print ppf nl ~property) ()

let write_file path nl ~property =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try
     print ppf nl ~property;
     Format.pp_print_flush ppf ()
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
