(* Telemetry library: span nesting, counter aggregation, JSONL round-trip,
   and the disabled handle's no-op guarantees. *)

module Sink = Telemetry.Sink

(* A deterministic clock: every read advances time by one second.  Note that
   [Telemetry.create] itself reads the clock once for the epoch. *)
let ticking_clock () =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := v +. 1.0;
    v

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let sink, events = Sink.memory () in
  let tel = Telemetry.create ~clock:(ticking_clock ()) sink in
  let result =
    Telemetry.span tel "outer" (fun () ->
        Telemetry.span tel "inner" (fun () -> 42))
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  match events () with
  | [ inner; outer ] ->
    (* the inner span closes first, so it is emitted first *)
    Alcotest.(check string) "inner kind" "span" inner.Sink.kind;
    Alcotest.(check (option string)) "inner name" (Some "inner")
      (Sink.find_str inner.fields "name");
    Alcotest.(check (option int)) "inner nest depth" (Some 1)
      (Sink.find_int inner.fields "nest");
    Alcotest.(check (option string)) "outer name" (Some "outer")
      (Sink.find_str outer.fields "name");
    Alcotest.(check (option int)) "outer nest depth" (Some 0)
      (Sink.find_int outer.fields "nest");
    (* clock reads: epoch, outer open, inner open, inner close, outer close *)
    Alcotest.(check (option (float 1e-9))) "inner duration" (Some 1.0)
      (Sink.find_float inner.fields "dur");
    Alcotest.(check (option (float 1e-9))) "outer duration" (Some 3.0)
      (Sink.find_float outer.fields "dur")
  | evs -> Alcotest.failf "expected 2 span events, got %d" (List.length evs)

let test_span_emits_on_exception () =
  let sink, events = Sink.memory () in
  let tel = Telemetry.create ~clock:(ticking_clock ()) sink in
  (try Telemetry.span tel "boom" (fun () -> failwith "boom") with
  | Failure _ -> ());
  match events () with
  | [ ev ] ->
    Alcotest.(check (option string)) "span recorded despite raise" (Some "boom")
      (Sink.find_str ev.Sink.fields "name")
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Aggregation.                                                        *)
(* ------------------------------------------------------------------ *)

let test_counter_aggregation () =
  let agg = Sink.aggregate () in
  let tel = Telemetry.create ~clock:(ticking_clock ()) (Sink.of_aggregate agg) in
  Telemetry.counter tel "widgets" 3;
  Telemetry.counter tel "widgets" 4;
  Telemetry.counter tel "gadgets" 1;
  Telemetry.gauge tel "level" 2.5;
  Telemetry.gauge tel "level" 7.25;
  Telemetry.event tel "decision" [ ("src", Sink.Str "vsids"); ("level", Sink.Int 1) ];
  Telemetry.event tel "decision" [ ("src", Sink.Str "bmc_score"); ("level", Sink.Int 2) ];
  Telemetry.event tel "decision" [ ("src", Sink.Str "bmc_score"); ("level", Sink.Int 3) ];
  Alcotest.(check int) "counters sum per name" 7 (Sink.counter_value agg "widgets");
  Alcotest.(check int) "independent counter" 1 (Sink.counter_value agg "gadgets");
  Alcotest.(check int) "unknown counter is 0" 0 (Sink.counter_value agg "nope");
  Alcotest.(check (option (float 1e-9))) "gauge keeps last value" (Some 7.25)
    (Sink.gauge_value agg "level");
  Alcotest.(check int) "instant events tallied by kind" 3 (Sink.tally_value agg "decision");
  Alcotest.(check int) "and by kind.src" 2 (Sink.tally_value agg "decision.bmc_score");
  Alcotest.(check int) "vsids attribution" 1 (Sink.tally_value agg "decision.vsids")

let test_span_aggregation () =
  let agg = Sink.aggregate () in
  let tel = Telemetry.create ~clock:(ticking_clock ()) (Sink.of_aggregate agg) in
  Telemetry.span tel "phase" (fun () -> ());
  Telemetry.span tel "phase" (fun () -> ());
  Telemetry.span_event tel "phase" ~dur:0.5 [ ("count", Sink.Int 10) ];
  Alcotest.(check int) "span_event count field wins over call count" 12
    (Sink.span_count agg "phase");
  Alcotest.(check (float 1e-9)) "seconds accumulate" 2.5 (Sink.span_seconds agg "phase");
  let report = Sink.report_to_string agg in
  Alcotest.(check bool) "report names the phase" true (Test_stats.contains report "phase")

(* ------------------------------------------------------------------ *)
(* JSONL round-trip.                                                   *)
(* ------------------------------------------------------------------ *)

let value_eq a b =
  match (a, b) with
  | Sink.Float x, Sink.Float y -> Float.equal x y
  | Sink.Float x, Sink.Int y | Sink.Int y, Sink.Float x ->
    (* JSON does not distinguish 2.0 from 2 *)
    Float.equal x (float_of_int y)
  | a, b -> a = b

let check_roundtrip (ev : Sink.event) =
  let line = Sink.to_json ev in
  match Sink.event_of_json line with
  | Error msg -> Alcotest.failf "re-parse of %s failed: %s" line msg
  | Ok ev' ->
    Alcotest.(check (float 0.0)) "ts" ev.ts ev'.ts;
    Alcotest.(check string) "kind" ev.kind ev'.kind;
    Alcotest.(check int) "field count" (List.length ev.fields) (List.length ev'.fields);
    List.iter2
      (fun (k, v) (k', v') ->
        Alcotest.(check string) "field name" k k';
        if not (value_eq v v') then Alcotest.failf "field %s did not round-trip in %s" k line)
      ev.fields ev'.fields

let test_jsonl_roundtrip () =
  List.iter check_roundtrip
    [
      { ts = 0.0; kind = "span"; fields = [ ("name", Str "bcp"); ("dur", Float 0.00123) ] };
      {
        ts = 1.5e-7;
        kind = "depth";
        fields =
          [
            ("depth", Int 3);
            ("outcome", Str "unsat");
            ("solve_s", Float 0.1);
            ("switched", Bool false);
          ];
      };
      (* awkward floats and escaped strings *)
      { ts = 1.0 /. 3.0; kind = "gauge"; fields = [ ("value", Float 1e-300) ] };
      { ts = 0.0; kind = "note"; fields = [ ("msg", Str "say \"hi\"\n\ttab\\slash") ] };
      { ts = 0.0; kind = "empty"; fields = [] };
      { ts = 12345.678; kind = "counter"; fields = [ ("n", Int max_int) ] };
    ]

let test_buffer_sink_trace () =
  let buf = Buffer.create 256 in
  let tel = Telemetry.create ~clock:(ticking_clock ()) (Sink.of_buffer buf) in
  Telemetry.counter tel "c" 1;
  Telemetry.span tel "s" (fun () -> ());
  Telemetry.event tel "decision" [ ("src", Sink.Str "vsids"); ("level", Sink.Int 4) ];
  let events = Sink.events_of_string (Buffer.contents buf) in
  Alcotest.(check int) "one line per event" 3 (List.length events);
  Alcotest.(check (list string)) "kinds in order" [ "counter"; "span"; "decision" ]
    (List.map (fun (e : Sink.event) -> e.kind) events);
  (* a parsed trace can be re-aggregated *)
  let agg = Sink.aggregate () in
  let sink = Sink.of_aggregate agg in
  List.iter sink.Sink.emit events;
  Alcotest.(check int) "re-aggregated counter" 1 (Sink.counter_value agg "c");
  Alcotest.(check int) "re-aggregated decision" 1 (Sink.tally_value agg "decision.vsids")

let test_event_of_json_rejects_garbage () =
  let bad s =
    match Sink.event_of_json s with
    | Ok _ -> Alcotest.failf "expected parse failure on %s" s
    | Error _ -> ()
  in
  bad "";
  bad "not json";
  bad "{\"ts\":0.0}";
  bad "[1,2,3]";
  bad "{\"ts\":0.0,\"ev\":\"x\" trailing"

(* ------------------------------------------------------------------ *)
(* Domain safety.                                                      *)
(* ------------------------------------------------------------------ *)

let test_two_domain_hammer () =
  (* Two domains hammer the same buffer + aggregate sinks.  Without the
     per-sink mutex this loses events (racy [Buffer] / [Hashtbl] mutation)
     or interleaves JSONL lines; with it, every event survives and every
     line parses. *)
  let n = 5_000 in
  let buf = Buffer.create (n * 64) in
  let agg = Sink.aggregate () in
  let sink = Sink.tee [ Sink.of_buffer buf; Sink.of_aggregate agg ] in
  let worker d () =
    for i = 1 to n do
      sink.Sink.emit
        {
          Sink.ts = float_of_int i;
          kind = "counter";
          fields = [ ("name", Sink.Str "hits"); ("value", Sink.Int 1) ];
        };
      sink.Sink.emit
        { Sink.ts = float_of_int i; kind = "decision"; fields = [ ("src", Sink.Str d) ] }
    done
  in
  let d1 = Domain.spawn (worker "left") in
  let d2 = Domain.spawn (worker "right") in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no counter increment lost" (2 * n) (Sink.counter_value agg "hits");
  Alcotest.(check int) "tally per domain" n (Sink.tally_value agg "decision.left");
  Alcotest.(check int) "tally other domain" n (Sink.tally_value agg "decision.right");
  let events = Sink.events_of_string (Buffer.contents buf) in
  Alcotest.(check int) "every JSONL line intact" (4 * n) (List.length events)

let test_two_domain_span_nesting () =
  (* Span nesting depth is domain-local: two domains nesting spans through
     one shared handle must each see their own depths (outer 0, inner 1),
     never a sibling's.  With a shared mutable nest counter this flakes —
     one domain's open span would shift the other's recorded depth. *)
  let sink, events = Sink.memory () in
  let tel = Telemetry.create sink in
  let worker tag () =
    for _ = 1 to 200 do
      Telemetry.span tel (tag ^ ".outer") (fun () ->
          Telemetry.span tel (tag ^ ".inner") (fun () -> ()))
    done
  in
  let d1 = Domain.spawn (worker "left") in
  let d2 = Domain.spawn (worker "right") in
  Domain.join d1;
  Domain.join d2;
  let evs = events () in
  Alcotest.(check int) "all spans recorded" 800 (List.length evs);
  List.iter
    (fun (ev : Sink.event) ->
      match (Sink.find_str ev.fields "name", Sink.find_int ev.fields "nest") with
      | Some name, Some nest ->
        let expected =
          if String.length name > 6 && String.sub name (String.length name - 6) 6 = ".inner"
          then 1
          else 0
        in
        if nest <> expected then
          Alcotest.failf "span %s recorded nest %d, expected %d" name nest expected
      | _ -> Alcotest.fail "span event missing name or nest")
    evs

(* ------------------------------------------------------------------ *)
(* Disabled handle.                                                    *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_noop () =
  let tel = Telemetry.disabled in
  Alcotest.(check bool) "not enabled" false (Telemetry.enabled tel);
  (* none of these may raise or allocate events anywhere observable *)
  Telemetry.counter tel "c" 1;
  Telemetry.gauge tel "g" 1.0;
  Telemetry.event tel "decision" [ ("src", Sink.Str "vsids") ];
  Telemetry.span_event tel "bcp" ~dur:1.0 [];
  Alcotest.(check int) "span is transparent" 9 (Telemetry.span tel "s" (fun () -> 9));
  Alcotest.(check (float 0.0)) "now is frozen at 0" 0.0 (Telemetry.now tel)

let test_disabled_solver_matches_plain () =
  (* a solver built with the disabled handle must behave identically to one
     built without telemetry: same outcome, same stats, no timing fields *)
  let cnf () =
    let f = Sat.Cnf.create () in
    List.iter
      (fun c -> Sat.Cnf.add_clause f (List.map (fun (v, s) -> Sat.Lit.make v s) c))
      [
        [ (0, true); (1, true) ];
        [ (0, false); (2, true) ];
        [ (1, false); (2, false) ];
        [ (2, false); (3, true) ];
        [ (0, true); (3, false) ];
      ];
    f
  in
  let plain = Sat.Solver.create (cnf ()) in
  let with_disabled = Sat.Solver.create ~telemetry:Telemetry.disabled (cnf ()) in
  let o1 = Sat.Solver.solve plain in
  let o2 = Sat.Solver.solve with_disabled in
  Alcotest.(check string) "same outcome" (Sat.Solver.outcome_string o1)
    (Sat.Solver.outcome_string o2);
  let s = Sat.Solver.stats with_disabled in
  Alcotest.(check (float 0.0)) "bcp_time untouched when disabled" 0.0 s.Sat.Stats.bcp_time;
  Alcotest.(check (float 0.0)) "analyze_time untouched when disabled" 0.0
    s.Sat.Stats.analyze_time;
  Alcotest.(check bool) "solve_time always recorded" true (s.Sat.Stats.solve_time >= 0.0)

let tests =
  [
    Alcotest.test_case "span nesting and durations" `Quick test_span_nesting;
    Alcotest.test_case "span emits on exception" `Quick test_span_emits_on_exception;
    Alcotest.test_case "counter/gauge/tally aggregation" `Quick test_counter_aggregation;
    Alcotest.test_case "span aggregation and report" `Quick test_span_aggregation;
    Alcotest.test_case "JSONL round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "buffer sink produces parsable JSONL" `Quick test_buffer_sink_trace;
    Alcotest.test_case "event_of_json rejects garbage" `Quick test_event_of_json_rejects_garbage;
    Alcotest.test_case "two-domain sink hammer" `Quick test_two_domain_hammer;
    Alcotest.test_case "two-domain span nesting is domain-local" `Quick
      test_two_domain_span_nesting;
    Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "disabled solver matches plain" `Quick test_disabled_solver_matches_plain;
  ]
