lib/core/abstraction.mli: Circuit Engine Format Trace
