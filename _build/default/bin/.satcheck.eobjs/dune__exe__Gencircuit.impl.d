bin/gencircuit.ml: Arg Circuit Cmd Cmdliner Filename Format List Sys Term
