(* The incremental BMC engine: correctness against the oracle and
   equivalence with the non-incremental engine. *)

let verdict_matches (expect : Circuit.Generators.expect) (v : Bmc.Engine.verdict) =
  match (expect, v) with
  | Circuit.Generators.Fails_at k, Bmc.Engine.Falsified t -> t.Bmc.Trace.depth = k
  | Circuit.Generators.Holds, Bmc.Engine.Bounded_pass _ -> true
  | ( (Circuit.Generators.Fails_at _ | Circuit.Generators.Holds),
      (Bmc.Engine.Falsified _ | Bmc.Engine.Bounded_pass _ | Bmc.Engine.Aborted _) ) ->
    false

let test_all_modes_all_tiny_cases () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      match case.expect with
      | None -> ()
      | Some expect ->
        List.iter
          (fun mode ->
            let config = Bmc.Engine.config ~mode ~max_depth:case.suggested_depth () in
            let r = Bmc.Incremental.run_case ~config case in
            if not (verdict_matches expect r.verdict) then
              Alcotest.failf "%s in mode %a: expected %a, got %a" case.name Bmc.Engine.pp_mode
                mode Circuit.Generators.pp_expect expect Bmc.Engine.pp_verdict r.verdict)
          Bmc.Engine.all_modes)
    (Circuit.Generators.tiny_suite ())

let test_per_depth_outcomes_match_engine () =
  let case = Circuit.Generators.counter_en ~bits:3 ~target:5 () in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:8 () in
  let a = Bmc.Engine.run_case ~config case in
  let b = Bmc.Incremental.run_case ~config case in
  Alcotest.(check int) "same number of instances" (List.length a.per_depth)
    (List.length b.per_depth);
  List.iter2
    (fun (x : Bmc.Engine.depth_stat) (y : Bmc.Engine.depth_stat) ->
      Alcotest.(check string)
        (Printf.sprintf "outcome at depth %d" x.depth)
        (Format.asprintf "%a" Sat.Solver.pp_outcome x.outcome)
        (Format.asprintf "%a" Sat.Solver.pp_outcome y.outcome))
    a.per_depth b.per_depth

let test_cores_flow_between_instances () =
  let case = Circuit.Generators.ring ~len:4 () in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth:5 () in
  let r = Bmc.Incremental.run_case ~config case in
  List.iter
    (fun (d : Bmc.Engine.depth_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "core collected at depth %d" d.depth)
        true (d.core_size > 0))
    r.per_depth

let test_trace_replays () =
  let case = Circuit.Generators.fifo_overflow ~bits:2 () in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Dynamic ~max_depth:6 () in
  match (Bmc.Incremental.run_case ~config case).verdict with
  | Bmc.Engine.Falsified trace ->
    Alcotest.(check int) "depth" 4 trace.Bmc.Trace.depth;
    Alcotest.(check bool) "replay" true
      (Bmc.Trace.replay trace case.netlist ~property:case.property)
  | v -> Alcotest.failf "expected counterexample, got %a" Bmc.Engine.pp_verdict v

let test_budget_abort () =
  let case = Circuit.Generators.parity_pipe ~stages:12 () in
  let budget =
    { Sat.Solver.max_conflicts = Some 1; max_propagations = Some 10; max_seconds = None; stop = None }
  in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Standard ~budget ~max_depth:24 () in
  match (Bmc.Incremental.run_case ~config case).verdict with
  | Bmc.Engine.Aborted _ -> ()
  | v -> Alcotest.failf "expected abort, got %a" Bmc.Engine.pp_verdict v

let test_decision_deltas_are_per_instance () =
  (* per-depth statistics must be deltas, not cumulative counters *)
  let case = Circuit.Generators.ring ~len:5 () in
  let config = Bmc.Engine.config ~mode:Bmc.Engine.Standard ~max_depth:8 () in
  let r = Bmc.Incremental.run_case ~config case in
  let sum = List.fold_left (fun acc (d : Bmc.Engine.depth_stat) -> acc + d.decisions) 0 r.per_depth in
  Alcotest.(check int) "totals equal the sum of deltas" r.total_decisions sum

let tests =
  [
    Alcotest.test_case "all modes, all tiny cases" `Slow test_all_modes_all_tiny_cases;
    Alcotest.test_case "per-depth outcomes match" `Quick test_per_depth_outcomes_match_engine;
    Alcotest.test_case "cores flow" `Quick test_cores_flow_between_instances;
    Alcotest.test_case "trace replays" `Quick test_trace_replays;
    Alcotest.test_case "budget abort" `Quick test_budget_abort;
    Alcotest.test_case "per-instance deltas" `Quick test_decision_deltas_are_per_instance;
  ]
