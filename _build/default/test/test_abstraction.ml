(* Proof-based abstraction: unbounded proofs from bounded cores. *)

let cfg ?(max_depth = 12) () = Bmc.Engine.config ~mode:Bmc.Engine.Static ~max_depth ()

let test_abstract_registers_shape () =
  let case = Circuit.Generators.ring ~len:4 ~noise:8 () in
  let keep r =
    match Circuit.Netlist.name_of case.netlist r with
    | Some name -> String.length name > 0 && name.[0] = 't' (* the token bits *)
    | None -> false
  in
  let abstract_nl, map = Circuit.Netlist.abstract_registers case.netlist ~keep in
  Alcotest.(check int) "only the kept registers remain" 4
    (List.length (Circuit.Netlist.regs abstract_nl));
  (* freed registers reappear as inputs *)
  Alcotest.(check bool) "more inputs than before" true
    (List.length (Circuit.Netlist.inputs abstract_nl)
    > List.length (Circuit.Netlist.inputs case.netlist));
  (* the mapped property is a valid node of the new netlist *)
  let p' = map case.property in
  Alcotest.(check bool) "property maps" true
    (p' >= 0 && p' < Circuit.Netlist.num_nodes abstract_nl)

let test_abstraction_overapproximates () =
  (* keeping every register must preserve the oracle verdict exactly *)
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let abstract_nl, map =
        Circuit.Netlist.abstract_registers case.netlist ~keep:(fun _ -> true)
      in
      let v1 = Circuit.Reach.check case.netlist ~property:case.property in
      let v2 = Circuit.Reach.check abstract_nl ~property:(map case.property) in
      if not (Circuit.Reach.equal_verdict v1 v2) then
        Alcotest.failf "%s: keep-all abstraction changed the verdict" case.name)
    (Circuit.Generators.tiny_suite ())

let test_abstraction_soundness_direction () =
  (* if the property holds with registers freed, it holds concretely; freeing
     the counter of a failing case must keep it failing (over-approximation
     can only add behaviours) *)
  let case = Circuit.Generators.counter ~bits:3 ~target:5 () in
  let abstract_nl, map =
    Circuit.Netlist.abstract_registers case.netlist ~keep:(fun _ -> false)
  in
  match Circuit.Reach.check abstract_nl ~property:(map case.property) with
  | Circuit.Reach.Fails_at j -> Alcotest.(check bool) "fails at least as early" true (j <= 5)
  | v -> Alcotest.failf "free abstraction cannot hold: %a" Circuit.Reach.pp_verdict v

let test_proves_noisy_holds_cases () =
  (* circuits whose full state space is far beyond explicit enumeration *)
  List.iter
    (fun ((case : Circuit.Generators.case), expect_regs) ->
      match (Bmc.Abstraction.prove_case ~config:(cfg ()) case).verdict with
      | Bmc.Abstraction.Proved { kept_regs; total_regs; _ } ->
        Alcotest.(check bool)
          (case.name ^ ": abstraction much smaller than the circuit")
          true
          (kept_regs <= expect_regs && kept_regs < total_regs)
      | v -> Alcotest.failf "%s: expected proof, got %a" case.name Bmc.Abstraction.pp_verdict v)
    [
      (Circuit.Generators.ring ~len:12 ~noise:32 (), 13);
      (Circuit.Generators.parity_pipe ~stages:8 ~noise:32 (), 10);
      (Circuit.Generators.johnson ~width:8 ~noise:40 (), 9);
      (Circuit.Generators.fifo_safe ~bits:4 ~noise:24 (), 6);
    ]

let test_finds_real_counterexamples () =
  let case = Circuit.Generators.counter ~bits:4 ~target:9 ~noise:16 () in
  match (Bmc.Abstraction.prove_case ~config:(cfg ~max_depth:9 ()) case).verdict with
  | Bmc.Abstraction.Falsified trace ->
    Alcotest.(check int) "exact depth" 9 trace.Bmc.Trace.depth;
    Alcotest.(check bool) "replays" true
      (Bmc.Trace.replay trace case.netlist ~property:case.property)
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Abstraction.pp_verdict v

let test_abstract_cex_guides_depth () =
  (* the counter's first core misses the failure depth entirely; the
     abstract counterexample must jump BMC straight there, so the loop runs
     far fewer rounds than the failure depth *)
  let case = Circuit.Generators.counter ~bits:4 ~target:9 () in
  let r = Bmc.Abstraction.prove_case ~config:(cfg ~max_depth:9 ()) case in
  match r.verdict with
  | Bmc.Abstraction.Falsified _ ->
    Alcotest.(check bool) "skipped depths" true (List.length r.rounds < 9)
  | v -> Alcotest.failf "expected falsified, got %a" Bmc.Abstraction.pp_verdict v

let test_rounds_record_core_sizes () =
  let case = Circuit.Generators.ring ~len:6 ~noise:12 () in
  let r = Bmc.Abstraction.prove_case ~config:(cfg ()) case in
  match (r.verdict, r.rounds) with
  | Bmc.Abstraction.Proved _, rounds ->
    List.iter
      (fun (round : Bmc.Abstraction.round) ->
        Alcotest.(check bool) "core regs recorded" true (round.core_regs > 0))
      rounds
  | v, _ -> Alcotest.failf "expected proof, got %a" Bmc.Abstraction.pp_verdict v

(* Abstraction verdicts are sound against the oracle on small circuits. *)
let prop_abstraction_sound =
  let gen =
    let open QCheck.Gen in
    oneof
      [
        (pair (1 -- 6) (oneofl [ 0; 4 ]) >|= fun (t, z) ->
         Circuit.Generators.counter ~bits:3 ~target:t ~noise:z ());
        (pair (3 -- 6) (oneofl [ 0; 4 ]) >|= fun (l, z) ->
         Circuit.Generators.ring ~len:l ~noise:z ());
        (2 -- 4 >|= fun s -> Circuit.Generators.parity_pipe ~stages:s ());
        (2 -- 3 >|= fun b -> Circuit.Generators.fifo_safe ~bits:b ());
      ]
  in
  QCheck.Test.make ~name:"abstraction verdicts sound vs oracle" ~count:30
    (QCheck.make ~print:(fun (c : Circuit.Generators.case) -> c.name) gen)
    (fun case ->
      let r = Bmc.Abstraction.prove_case ~config:(cfg ~max_depth:10 ()) case in
      match (r.verdict, Circuit.Reach.check case.netlist ~property:case.property) with
      | Bmc.Abstraction.Proved _, Circuit.Reach.Holds _ -> true
      | Bmc.Abstraction.Falsified t, Circuit.Reach.Fails_at k -> t.Bmc.Trace.depth = k
      | Bmc.Abstraction.Unknown _, _ -> true
      | _, Circuit.Reach.Too_large -> true
      | (Bmc.Abstraction.Proved _ | Bmc.Abstraction.Falsified _), _ -> false)

let tests =
  [
    Alcotest.test_case "abstract_registers shape" `Quick test_abstract_registers_shape;
    Alcotest.test_case "keep-all preserves verdict" `Slow test_abstraction_overapproximates;
    Alcotest.test_case "over-approximation direction" `Quick test_abstraction_soundness_direction;
    Alcotest.test_case "proves noisy holds cases" `Quick test_proves_noisy_holds_cases;
    Alcotest.test_case "finds real counterexamples" `Quick test_finds_real_counterexamples;
    Alcotest.test_case "abstract cex guides depth" `Quick test_abstract_cex_guides_depth;
    Alcotest.test_case "rounds record cores" `Quick test_rounds_record_core_sizes;
    QCheck_alcotest.to_alcotest prop_abstraction_sound;
  ]
