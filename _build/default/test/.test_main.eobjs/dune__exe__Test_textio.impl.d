test/test_textio.ml: Alcotest Circuit Filename List Sys
