(* Time-axis ordering baseline. *)

let test_rank_increases_with_frame () =
  let case = Circuit.Generators.traffic () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let _ = Bmc.Unroll.instance u ~k:4 in
  let rank = Bmc.Shtrichman.rank u ~k:4 in
  let v_at frame = Bmc.Unroll.var_of u ~node:case.property ~frame in
  Alcotest.(check bool) "frame 4 over frame 0" true (rank.(v_at 4) > rank.(v_at 0));
  Alcotest.(check bool) "frame 2 over frame 1" true (rank.(v_at 2) > rank.(v_at 1))

let test_rank_dimension () =
  let case = Circuit.Generators.ring ~len:4 () in
  let u = Bmc.Unroll.create case.netlist ~property:case.property in
  let _ = Bmc.Unroll.instance u ~k:3 in
  let rank = Bmc.Shtrichman.rank u ~k:3 in
  Alcotest.(check int) "covers every allocated variable"
    (Bmc.Varmap.num_vars (Bmc.Unroll.varmap u))
    (Array.length rank)

let test_mode_gives_same_verdicts () =
  List.iter
    (fun (case : Circuit.Generators.case) ->
      let cfg m = Bmc.Engine.config ~mode:m ~max_depth:(min case.suggested_depth 6) () in
      let a = (Bmc.Engine.run_case ~config:(cfg Bmc.Engine.Standard) case).verdict in
      let b = (Bmc.Engine.run_case ~config:(cfg Bmc.Engine.Shtrichman) case).verdict in
      let same =
        match (a, b) with
        | Bmc.Engine.Falsified t1, Bmc.Engine.Falsified t2 ->
          t1.Bmc.Trace.depth = t2.Bmc.Trace.depth
        | Bmc.Engine.Bounded_pass k1, Bmc.Engine.Bounded_pass k2 -> k1 = k2
        | (Bmc.Engine.Falsified _ | Bmc.Engine.Bounded_pass _ | Bmc.Engine.Aborted _), _ ->
          false
      in
      if not same then
        Alcotest.failf "%s: shtrichman disagrees (%a vs %a)" case.name Bmc.Engine.pp_verdict a
          Bmc.Engine.pp_verdict b)
    [
      Circuit.Generators.counter ~bits:3 ~target:5 ();
      Circuit.Generators.ring ~len:4 ();
      Circuit.Generators.parity_pipe ~stages:3 ();
    ]

let tests =
  [
    Alcotest.test_case "rank increases with frame" `Quick test_rank_increases_with_frame;
    Alcotest.test_case "rank dimension" `Quick test_rank_dimension;
    Alcotest.test_case "same verdicts" `Quick test_mode_gives_same_verdicts;
  ]
