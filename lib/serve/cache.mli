(** The warm-session cache: digest-keyed entries, LRU-evicted by resident
    clause-arena bytes.

    An entry remembers, for one (structural digest, property, ordering
    mode) triple, the warm {!Bmc.Session} together with what it has
    already proven: [ce_next_k] depths of UNSAT instances, a memoised
    counterexample once falsified, and the deepest instance's unsat core.
    Repeat requests at or below the proven bound are answered from the
    memo without touching a solver; deeper requests resume the warm
    session from [ce_next_k].

    {b Threading.}  The table and every entry field except [ce_session]
    are owned by the server's front-end thread: workers communicate
    results back through the server's mutex-protected completion queue,
    and the front end applies them — so entry mutation is single-threaded
    and eviction decisions race with nothing.  [ce_session] itself is
    created and used only inside the entry's pinned pool worker
    ([ce_affinity] — sessions are domain-confined); the front end only
    ever {e drops} the reference when evicting a quiescent ([ce_busy =
    false]) entry, which is safe because the completion queue's mutex
    ordered the worker's last write before the front end observed the
    entry idle.

    The ['a] parameter is the server's pending-request record: requests
    arriving while an entry is busy queue on [ce_waiting] (newest first)
    and are re-dispatched by the front end as completions arrive. *)

type 'a entry = {
  ce_key : string;  (** digest + property + mode *)
  ce_digest : string;  (** {!Circuit.Netlist.digest} of the circuit *)
  ce_netlist : Circuit.Netlist.t;
  ce_property : Circuit.Netlist.node;
  ce_mode : Bmc.Session.mode;
  ce_affinity : int;
      (** the pool worker every job for this entry pins to — sessions are
          domain-confined, so an entry's solves serialise on one worker *)
  ce_deadline : float ref;
      (** absolute wall-clock deadline of the {e running} request
          ([infinity] when none); written by the front end before
          dispatch, read by the session's budget stop hook *)
  mutable ce_session : Bmc.Session.t option;  (** worker-confined *)
  mutable ce_next_k : int;  (** depths [0..ce_next_k-1] proven UNSAT *)
  mutable ce_falsified : (int * Obs.Json.t) option;
      (** memoised counterexample: depth and serialized trace *)
  mutable ce_core : Sat.Lit.var list;
      (** unsat-core variables of depth [ce_next_k - 1] *)
  mutable ce_bytes : int;  (** resident clause-arena bytes (LRU weight) *)
  mutable ce_stamp : int;  (** last-use tick of the LRU clock *)
  mutable ce_busy : bool;  (** a job for this entry is in flight *)
  mutable ce_waiting : 'a list;  (** queued requests, newest first *)
}

type 'a t

val create : max_bytes:int -> jobs:int -> unit -> 'a t
(** [jobs] is the pool size; entry affinities spread over it by key
    hash. *)

val find : 'a t -> string -> 'a entry option
(** Lookup by key; touches the LRU stamp. *)

val add :
  'a t ->
  key:string ->
  digest:string ->
  netlist:Circuit.Netlist.t ->
  property:Circuit.Netlist.node ->
  mode:Bmc.Session.mode ->
  'a entry
(** Insert a cold entry.  @raise Invalid_argument if the key exists. *)

val invalidate : 'a entry -> unit
(** Reset an entry to cold: drop the session reference and everything
    proven.  Used after an aborted (deadline / budget) or failed request,
    whose session is stuck at an instance the depth rule will not let it
    re-solve.  Memoised counterexamples survive only full {!drop}. *)

val drop : 'a t -> 'a entry -> unit
(** Remove the entry from the table (no-op if already gone). *)

val evict : 'a t -> 'a entry list
(** Evict least-recently-used idle entries until resident bytes fit the
    budget; busy entries are never evicted.  Returns what was dropped. *)

val resident_bytes : 'a t -> int

val size : 'a t -> int

val entries : 'a t -> 'a entry list
(** Unordered. *)

val exchange : 'a t -> digest:string -> Share.Exchange.t
(** The per-digest learnt-clause exchange (created on first use): with
    sharing on, entries over structurally identical circuits — equal
    digests mean identical node numbering, so packed clause keys line up —
    exchange learnt clauses even when their requests arrived as separate
    parses.  Exchanges are per-digest, not per-entry, and survive entry
    eviction. *)
