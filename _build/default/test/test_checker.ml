(* The independent RUP refutation checker (paper reference [18]). *)

let lit (v, s) = Sat.Lit.make v s

let mk_cnf ?(num_vars = 0) clauses =
  let f = Sat.Cnf.create ~num_vars () in
  List.iter (fun c -> Sat.Cnf.add_clause f (List.map lit c)) clauses;
  f

let php n holes =
  let v p h = (p * holes) + h in
  let per_pigeon = List.init n (fun p -> List.init holes (fun h -> (v p h, true))) in
  let no_share =
    List.concat
      (List.init holes (fun h ->
           List.concat
             (List.init n (fun p1 ->
                  List.init (n - p1 - 1) (fun d -> [ (v p1 h, false); (v (p1 + d + 1) h, false) ])))))
  in
  per_pigeon @ no_share

let solve_drat clauses =
  let cnf = mk_cnf clauses in
  let s = Sat.Solver.create ~with_drat:true cnf in
  (cnf, Sat.Solver.solve s, s)

let test_trivial_refutation_validates () =
  let cnf, o, s = solve_drat [ [ (0, true) ]; [ (0, false) ] ] in
  Alcotest.(check string) "unsat" "UNSAT" (Format.asprintf "%a" Sat.Solver.pp_outcome o);
  match Sat.Checker.check_refutation cnf (Sat.Solver.drat_events s) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_php_refutation_validates () =
  let cnf, o, s = solve_drat (php 5 4) in
  Alcotest.(check string) "unsat" "UNSAT" (Format.asprintf "%a" Sat.Solver.pp_outcome o);
  (* a real proof: several learnt clauses before the empty one *)
  let events = Sat.Solver.drat_events s in
  Alcotest.(check bool) "nontrivial proof" true (List.length events > 3);
  match Sat.Checker.check_refutation cnf events with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_minimized_proofs_validate () =
  let cnf = mk_cnf (php 5 4) in
  let s = Sat.Solver.create ~with_drat:true ~minimize:true cnf in
  (match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | o -> Alcotest.failf "expected UNSAT, got %a" Sat.Solver.pp_outcome o);
  match Sat.Checker.check_refutation cnf (Sat.Solver.drat_events s) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("minimized proof rejected: " ^ msg)

let test_bogus_proof_rejected () =
  (* the empty clause is not RUP for a satisfiable formula *)
  let cnf = mk_cnf [ [ (0, true); (1, true) ] ] in
  match Sat.Checker.check_refutation cnf [ Sat.Checker.Learnt [] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bogus empty-clause proof accepted"

let test_unjustified_clause_rejected () =
  (* a learnt clause that does not follow by RUP must be refused even if a
     later step would make the proof complete *)
  let cnf = mk_cnf [ [ (0, true); (1, true) ] ] in
  match
    Sat.Checker.check_refutation cnf
      [ Sat.Checker.Learnt [ lit (0, true) ]; Sat.Checker.Learnt [] ]
  with
  | Error msg -> Alcotest.(check bool) "blames step 0" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "unjustified unit accepted"

let test_incomplete_proof_rejected () =
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, false) ] ] in
  match Sat.Checker.check_refutation cnf [] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty proof accepted"

let test_deletion_respected () =
  (* deleting the clause a later step depends on must invalidate the proof *)
  let cnf = mk_cnf [ [ (0, true) ]; [ (0, false); (1, true) ]; [ (1, false) ] ] in
  let ok_proof = [ Sat.Checker.Learnt [ lit (1, true) ]; Sat.Checker.Learnt [] ] in
  (match Sat.Checker.check_refutation cnf ok_proof with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let broken =
    [
      Sat.Checker.Deleted [ lit (0, true) ];
      Sat.Checker.Learnt [ lit (1, true) ];
      Sat.Checker.Learnt [];
    ]
  in
  match Sat.Checker.check_refutation cnf broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "proof depending on a deleted clause accepted"

let test_drat_text_roundtrip () =
  let events =
    [
      Sat.Checker.Learnt [ lit (0, true); lit (2, false) ];
      Sat.Checker.Deleted [ lit (1, true) ];
      Sat.Checker.Learnt [];
    ]
  in
  Alcotest.(check bool) "roundtrip" true
    (Sat.Checker.of_drat (Sat.Checker.to_drat events) = events)

let test_drat_text_format () =
  let text =
    Sat.Checker.to_drat [ Sat.Checker.Learnt [ lit (0, true) ]; Sat.Checker.Deleted [ lit (1, false) ] ]
  in
  Alcotest.(check string) "format" "1 0\nd -2 0\n" text

(* Fuzz: every refutation the solver produces passes the checker. *)
let prop_all_refutations_validate =
  let gen =
    let open QCheck.Gen in
    let clause nv = list_size (1 -- 3) (pair (0 -- (nv - 1)) bool) in
    (2 -- 7) >>= fun nv -> pair (return nv) (list_size (1 -- 25) (clause nv))
  in
  QCheck.Test.make ~name:"solver refutations always pass the RUP checker" ~count:300
    (QCheck.make gen) (fun (nv, cls) ->
      let cnf = mk_cnf ~num_vars:nv cls in
      let s = Sat.Solver.create ~with_drat:true cnf in
      match Sat.Solver.solve s with
      | Sat.Solver.Unsat -> Sat.Checker.check_refutation cnf (Sat.Solver.drat_events s) = Ok ()
      | Sat.Solver.Sat | Sat.Solver.Unknown -> true)

let tests =
  [
    Alcotest.test_case "trivial refutation" `Quick test_trivial_refutation_validates;
    Alcotest.test_case "php refutation" `Quick test_php_refutation_validates;
    Alcotest.test_case "minimized proofs" `Quick test_minimized_proofs_validate;
    Alcotest.test_case "bogus proof rejected" `Quick test_bogus_proof_rejected;
    Alcotest.test_case "unjustified clause rejected" `Quick test_unjustified_clause_rejected;
    Alcotest.test_case "incomplete proof rejected" `Quick test_incomplete_proof_rejected;
    Alcotest.test_case "deletion respected" `Quick test_deletion_respected;
    Alcotest.test_case "text roundtrip" `Quick test_drat_text_roundtrip;
    Alcotest.test_case "text format" `Quick test_drat_text_format;
    QCheck_alcotest.to_alcotest prop_all_refutations_validate;
  ]
