lib/circuit/reach.mli: Format Netlist
