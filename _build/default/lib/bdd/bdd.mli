(** Reduced ordered binary decision diagrams.

    The paper positions BMC as "a complement to model checking based on
    BDDs" (its opening sentence); this module is that complement's
    substrate.  A classic ROBDD package: hash-consed nodes under a fixed
    global variable order (the variable's integer index {e is} its level),
    memoised Shannon-expansion [ite], existential quantification, and a
    monotone variable renaming used by image computation.

    All values belong to a {!manager}; mixing managers is an error (checked
    cheaply).  Structural equality of BDDs is physical equality of their
    node indices, exposed as {!equal}. *)

type manager

type t
(** A BDD rooted at some node of its manager. *)

exception Node_limit
(** Raised by any operation that would grow the manager past its node
    limit — the symbolic engine treats it as "blow-up, fall back". *)

val manager : ?node_limit:int -> unit -> manager
(** Fresh manager.  [node_limit] (default 2_000_000) bounds the number of
    distinct nodes ever created. *)

val zero : manager -> t

val one : manager -> t

val var : manager -> int -> t
(** The function of a single variable.  Variables are dense non-negative
    integers; a smaller index is closer to the root.
    @raise Invalid_argument on a negative index. *)

val nvar : manager -> int -> t
(** Negation of {!var}. *)

val not_ : manager -> t -> t

val and_ : manager -> t -> t -> t

val or_ : manager -> t -> t -> t

val xor_ : manager -> t -> t -> t

val xnor_ : manager -> t -> t -> t

val implies : manager -> t -> t -> t

val ite : manager -> t -> t -> t -> t
(** [ite m f g h] is "if f then g else h". *)

val exists : manager -> int list -> t -> t
(** Existentially quantify the listed variables. *)

val forall : manager -> int list -> t -> t

val rename : manager -> (int -> int) -> t -> t
(** [rename m f b] substitutes variable [v] by variable [f v] throughout.
    [f] must be strictly monotone on the support of [b] (it may not reorder
    levels); this is checked and @raise Invalid_argument otherwise. *)

val restrict : manager -> int -> bool -> t -> t
(** Cofactor: fix one variable to a constant. *)

val is_zero : t -> bool

val is_one : t -> bool

val equal : t -> t -> bool

val eval : t -> (int -> bool) -> bool
(** Evaluate under a total assignment. *)

val support : t -> int list
(** Variables the function actually depends on, ascending. *)

val size : t -> int
(** Number of internal nodes reachable from this root. *)

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over the given variable universe
    [0 .. nvars-1] (as a float: counts overflow 63 bits quickly). *)

val any_sat : t -> (int * bool) list
(** One satisfying partial assignment (variables not listed are free).
    @raise Not_found on the zero BDD. *)

val num_nodes : manager -> int
(** Total nodes allocated in the manager so far. *)
