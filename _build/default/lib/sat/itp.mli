(** Craig interpolants from resolution proofs (McMillan, CAV 2003).

    Given a refutation of A ∧ B recorded as resolution chains (the
    antecedent lists of {!Proof}, whose order is exactly the order conflict
    analysis resolved on them), compute a formula I with

    - A ⊨ I,
    - I ∧ B unsatisfiable,
    - vars(I) ⊆ vars(A) ∩ vars(B).

    Using McMillan's labelling: an A-leaf contributes the disjunction of its
    B-shared literals, a B-leaf contributes ⊤; a resolution on an A-local
    pivot joins partial interpolants with ∨, on a shared pivot with ∧.

    This is what turns the paper's bounded UNSAT answers into unbounded
    proofs in {!Bmc.Interpolation}: the interpolant of the
    (initial-step, rest) split of a refuted BMC instance over-approximates
    the image of the initial states while staying bad-state-free. *)

(** Interpolant formulas over SAT literals. *)
type form =
  | Ftrue
  | Ffalse
  | Flit of Lit.t
  | Fand of form * form
  | For of form * form

val compute :
  clause_lits:(int -> Lit.t list) ->
  antecedents:(int -> int array option) ->
  final:int array ->
  side:(int -> [ `A | `B ]) ->
  b_vars:(Lit.var -> bool) ->
  form
(** [compute ~clause_lits ~antecedents ~final ~side ~b_vars] replays every
    chain reachable from the final conflict.  [clause_lits] must return the
    literals of {e any} clause ID (original or learnt); [antecedents]
    returns [None] exactly on leaves; [side] classifies leaves; [b_vars]
    says whether a variable occurs in the B-side leaves.
    @raise Invalid_argument if a chain does not resolve (no pivot found) —
    a corrupted proof. *)

val eval : form -> (Lit.var -> bool) -> bool

val variables : form -> Lit.var list
(** Ascending, without duplicates. *)

val pp : Format.formatter -> form -> unit
