test/test_word.ml: Alcotest Array Circuit List QCheck QCheck_alcotest
