lib/circuit/generators.ml: Array Format Hashtbl List Netlist Printf Word
