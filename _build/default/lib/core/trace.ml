type t = {
  depth : int;
  init_regs : (Circuit.Netlist.node * bool) list;
  inputs : (Circuit.Netlist.node * bool) list array;
}

let of_model unroll ~k ~model =
  let nl = Unroll.netlist unroll in
  let value node frame =
    let v = Unroll.var_of unroll ~node ~frame in
    v < Array.length model && model.(v)
  in
  let init_regs = List.map (fun r -> (r, value r 0)) (Circuit.Netlist.regs nl) in
  let inputs =
    Array.init (k + 1) (fun f -> List.map (fun i -> (i, value i f)) (Circuit.Netlist.inputs nl))
  in
  { depth = k; init_regs; inputs }

let replay t nl ~property =
  let sim = Circuit.Eval.compile nl in
  let resolve r =
    match List.assoc_opt r t.init_regs with Some b -> b | None -> false
  in
  let input_fun ~cycle node =
    if cycle <= t.depth then
      match List.assoc_opt node t.inputs.(cycle) with Some b -> b | None -> false
    else false
  in
  match
    Circuit.Eval.check_invariant sim ~resolve ~inputs:input_fun ~cycles:(t.depth + 1) ~property ()
  with
  | Some k -> k = t.depth
  | None -> false

let node_label netlist node =
  match netlist with
  | Some nl -> (
    match Circuit.Netlist.name_of nl node with Some s -> s | None -> Printf.sprintf "n%d" node)
  | None -> Printf.sprintf "n%d" node

let pp ?netlist () ppf t =
  let label = node_label netlist in
  Format.fprintf ppf "@[<v>counterexample of depth %d@," t.depth;
  Format.fprintf ppf "initial registers:@,";
  List.iter
    (fun (r, b) -> Format.fprintf ppf "  %s = %d@," (label r) (if b then 1 else 0))
    t.init_regs;
  Array.iteri
    (fun f vals ->
      Format.fprintf ppf "frame %d inputs:" f;
      List.iter (fun (n, b) -> Format.fprintf ppf " %s=%d" (label n) (if b then 1 else 0)) vals;
      Format.fprintf ppf "@,")
    t.inputs;
  Format.fprintf ppf "@]"
