lib/sat/itp.ml: Array Format Hashtbl Int List Lit Set
