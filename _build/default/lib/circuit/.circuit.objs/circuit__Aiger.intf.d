lib/circuit/aiger.mli: Netlist
