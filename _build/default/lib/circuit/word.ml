type word = Netlist.node array

let const nl ~width v =
  Array.init width (fun i ->
      if (v lsr i) land 1 = 1 then Netlist.const_true nl else Netlist.const_false nl)

let inputs nl ~prefix ~width =
  Array.init width (fun i -> Netlist.input nl (Printf.sprintf "%s%d" prefix i))

let regs nl ~prefix ~width ~init =
  Array.init width (fun i ->
      let bit = Option.map (fun v -> (v lsr i) land 1 = 1) init in
      Netlist.reg nl ~name:(Printf.sprintf "%s%d" prefix i) ~init:bit)

let connect nl rs ws =
  if Array.length rs <> Array.length ws then invalid_arg "Word.connect: width mismatch";
  Array.iteri (fun i r -> Netlist.set_next nl r ws.(i)) rs

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Word: width mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let not_ nl a = Array.map (Netlist.not_ nl) a

let and_ nl a b = map2 (Netlist.and_ nl) a b

let or_ nl a b = map2 (Netlist.or_ nl) a b

let xor_ nl a b = map2 (Netlist.xor_ nl) a b

let mux nl ~sel ~hi ~lo = map2 (fun h l -> Netlist.mux nl ~sel ~hi:h ~lo:l) hi lo

let full_add nl a b cin =
  let s = Netlist.xor_ nl (Netlist.xor_ nl a b) cin in
  let cout = Netlist.or_ nl (Netlist.and_ nl a b) (Netlist.and_ nl cin (Netlist.xor_ nl a b)) in
  (s, cout)

let add nl a b =
  if Array.length a <> Array.length b then invalid_arg "Word.add: width mismatch";
  let carry = ref (Netlist.const_false nl) in
  let sum =
    Array.init (Array.length a) (fun i ->
        let s, c = full_add nl a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let increment nl a =
  let carry = ref (Netlist.const_true nl) in
  let sum =
    Array.init (Array.length a) (fun i ->
        let s = Netlist.xor_ nl a.(i) !carry in
        carry := Netlist.and_ nl a.(i) !carry;
        s)
  in
  (sum, !carry)

let decrement nl a =
  (* a - 1 = a + (all ones); borrow-out is 1 iff a = 0 *)
  let borrow = ref (Netlist.const_true nl) in
  let diff =
    Array.init (Array.length a) (fun i ->
        let s = Netlist.xor_ nl a.(i) !borrow in
        borrow := Netlist.and_ nl (Netlist.not_ nl a.(i)) !borrow;
        s)
  in
  (diff, !borrow)

let eq_const nl a v =
  Netlist.and_list nl
    (Array.to_list
       (Array.mapi
          (fun i bit -> if (v lsr i) land 1 = 1 then bit else Netlist.not_ nl bit)
          a))

let eq nl a b = Netlist.and_list nl (Array.to_list (map2 (Netlist.xnor_ nl) a b))

let is_zero nl a = Netlist.and_list nl (Array.to_list (Array.map (Netlist.not_ nl) a))

let all_ones nl a = Netlist.and_list nl (Array.to_list a)

(* One-pass scan keeping "none seen yet" and "exactly one seen". *)
let one_counts nl a =
  let none = ref (Netlist.const_true nl) in
  let one = ref (Netlist.const_false nl) in
  Array.iter
    (fun bit ->
      let one' =
        Netlist.or_ nl
          (Netlist.and_ nl !one (Netlist.not_ nl bit))
          (Netlist.and_ nl !none bit)
      in
      let none' = Netlist.and_ nl !none (Netlist.not_ nl bit) in
      one := one';
      none := none')
    a;
  (!none, !one)

let exactly_one nl a =
  let _, one = one_counts nl a in
  one

let at_most_one nl a =
  let none, one = one_counts nl a in
  Netlist.or_ nl none one

let mul nl a b =
  if Array.length a <> Array.length b then invalid_arg "Word.mul: width mismatch";
  let width = Array.length a in
  let zero = Array.make width (Netlist.const_false nl) in
  let shifted i =
    Array.init width (fun j -> if j < i then Netlist.const_false nl else a.(j - i))
  in
  let acc = ref zero in
  for i = 0 to width - 1 do
    let addend = mux nl ~sel:b.(i) ~hi:(shifted i) ~lo:zero in
    let sum, _carry = add nl !acc addend in
    acc := sum
  done;
  !acc

let rotate_left a =
  let n = Array.length a in
  if n = 0 then [||] else Array.init n (fun i -> a.((i + n - 1) mod n))
