(* BMC property checker CLI.

   Checks the invariant property of a circuit (a .rnl netlist, an AIGER
   .aag/.aig file, or a named built-in benchmark) by bounded model checking
   with a selectable decision ordering, or proves it by k-induction.
   With --portfolio a roster of decision orderings (--order, default the
   paper's three) races on a domain pool — first definitive answer per
   depth wins, and --rotate recycles budget-exhausted losers onto untried
   heuristics; with several CIRCUIT arguments the properties are
   batch-solved across the pool.
   Exit codes: 10 = counterexample found, 20 = bounded pass / proved,
   0 = aborted on budget / undecided, 2 = input error.  A batch exits with
   the most severe code across its properties (10 over 0 over 20). *)

let load source =
  match Circuit.Generators.by_name source with
  | Some case -> Ok (case.Circuit.Generators.netlist, case.Circuit.Generators.property, Some case)
  | None -> (
    try
      if Filename.check_suffix source ".aag" || Filename.check_suffix source ".aig" then
        let nl, prop = Circuit.Aiger.parse_file source in
        Ok (nl, prop, None)
      else
        let nl, prop = Circuit.Textio.parse_file source in
        Ok (nl, prop, None)
    with
    | Circuit.Textio.Parse_error msg -> Error msg
    | Circuit.Aiger.Parse_error msg -> Error msg
    | Sys_error msg -> Error msg)

(* Build the telemetry handle for --trace/--metrics/--ledger and register
   the end-of-process reporting; at_exit covers every exit path (the tool
   exits with protocol-specific codes all over).  --ledger tees a memory
   sink into the same stream and folds it into an {!Obs.Ledger} at exit —
   by then every worker domain has been joined, so the read-back is safe. *)
let setup_telemetry trace_file metrics ledger_file =
  let agg = if metrics then Some (Telemetry.Sink.aggregate ()) else None in
  let trace_oc =
    Option.map
      (fun path ->
        try open_out path with
        | Sys_error msg ->
          Format.eprintf "bmccheck: cannot open trace file: %s@." msg;
          exit 2)
      trace_file
  in
  let mem =
    Option.map (fun path -> (path, Telemetry.Sink.memory ())) ledger_file
  in
  let sinks =
    Option.to_list (Option.map Telemetry.Sink.of_channel trace_oc)
    @ Option.to_list (Option.map Telemetry.Sink.of_aggregate agg)
    @ Option.to_list (Option.map (fun (_, (sink, _)) -> sink) mem)
  in
  match sinks with
  | [] -> Telemetry.disabled
  | sinks ->
    (* a ledger-only handle skips hot-path phase timing (two clock reads
       per BCP) — that detail costs real wall time and only --trace and
       --metrics consumers read it *)
    let timing = trace_file <> None || metrics in
    let telemetry = Telemetry.create ~timing (Telemetry.Sink.tee sinks) in
    at_exit (fun () ->
        Telemetry.flush telemetry;
        Option.iter close_out trace_oc;
        (match trace_file with
        | Some path -> Format.eprintf "bmccheck: trace written to %s@." path
        | None -> ());
        (match mem with
        | Some (path, (_, events)) -> (
          let ledger = Obs.Ledger.of_events (events ()) in
          try
            let oc = open_out path in
            output_string oc (Obs.Ledger.to_string ledger);
            close_out oc;
            Format.eprintf "bmccheck: ledger written to %s@." path
          with Sys_error msg ->
            Format.eprintf "bmccheck: cannot write ledger: %s@." msg)
        | None -> ());
        Option.iter (Format.printf "%a@." Telemetry.Sink.pp_report) agg);
    telemetry

(* --flight-recorder: a bounded per-domain event ring every solver the run
   creates records into; dumped at exit, and on SIGUSR1 so a wedged run can
   be inspected from outside. *)
let setup_recorder flight_file =
  Option.map
    (fun path ->
      let r = Obs.Recorder.create () in
      Obs.Recorder.on_sigusr1 r ~path;
      at_exit (fun () ->
          try
            Obs.Recorder.dump r path;
            Format.eprintf "bmccheck: flight recording written to %s@." path
          with Sys_error msg ->
            Format.eprintf "bmccheck: cannot write flight recording: %s@." msg);
      r)
    flight_file

let pp_depth_stat ppf (d : Bmc.Engine.depth_stat) =
  Format.fprintf ppf
    "depth %3d: %-7s dec=%-8d impl=%-10d confl=%-7d core=%d vars, build=%.3fs solve=%.3fs \
     cdg=%.3fs%s"
    d.depth
    (Format.asprintf "%a" Sat.Solver.pp_outcome d.outcome)
    d.decisions d.implications d.conflicts d.core_var_count d.build_time d.time d.cdg_time
    (if d.switched then " [switched to VSIDS]" else "");
  if d.inpr_elim + d.inpr_subsumed + d.inpr_strengthened + d.inpr_probe_failed > 0 then
    Format.fprintf ppf " [inpr elim=%d sub=%d str=%d probes=%d]" d.inpr_elim d.inpr_subsumed
      d.inpr_strengthened d.inpr_probe_failed;
  if d.core_pre > 0 && d.core_pre <> d.core_size then
    Format.fprintf ppf " [coremin %d->%d clauses%s]" d.core_pre d.core_size
      (if d.coremin_certified then "" else ", uncertified")

(* --inprocess exit summary: totals over the run's depth stats, printed
   only when inprocessing was requested (so default output is unchanged) *)
let pp_inprocess_summary source (per_depth : Bmc.Engine.depth_stat list) =
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 per_depth in
  let time = List.fold_left (fun acc (d : Bmc.Engine.depth_stat) -> acc +. d.inpr_time) 0.0 per_depth in
  Format.printf
    "%s: inprocessing eliminated %d vars, subsumed %d clauses, strengthened %d, %d failed \
     probes (%.3fs)@."
    source
    (sum (fun d -> d.Bmc.Session.inpr_elim))
    (sum (fun d -> d.Bmc.Session.inpr_subsumed))
    (sum (fun d -> d.Bmc.Session.inpr_strengthened))
    (sum (fun d -> d.Bmc.Session.inpr_probe_failed))
    time

(* --core-min exit summary: totals over the run's depth stats, printed only
   when minimisation was requested (so default output is unchanged) *)
let pp_coremin_summary source (per_depth : Bmc.Engine.depth_stat list) =
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 per_depth in
  let pre = sum (fun (d : Bmc.Engine.depth_stat) -> d.core_pre) in
  let post = sum (fun (d : Bmc.Engine.depth_stat) -> d.core_size) in
  let time =
    List.fold_left
      (fun acc (d : Bmc.Engine.depth_stat) -> acc +. d.coremin_time)
      0.0 per_depth
  in
  let uncertified =
    List.exists (fun (d : Bmc.Engine.depth_stat) -> not d.coremin_certified) per_depth
  in
  Format.printf "%s: core minimisation %d -> %d clauses (%.3fs, %s)@." source pre post time
    (if uncertified then "NOT all certified" else "all certified")

(* --core-min[=N] -> session core policy: minimal cores, optionally bounded
   to N minimisation solver calls *)
let core_opts core_min =
  match core_min with
  | None -> (Bmc.Session.Core_fast, Sat.Coremin.no_budget)
  | Some n ->
    ( Bmc.Session.Core_minimal,
      if n >= 0 then { Sat.Coremin.no_budget with Sat.Coremin.max_solves = Some n }
      else Sat.Coremin.no_budget )

let parse_inprocess = function
  | None -> None
  | Some spec -> (
    match Sat.Inprocess.config_of_string spec with
    | Ok cfg -> Some cfg
    | Error msg ->
      Format.eprintf "bmccheck: --inprocess: %s@." msg;
      exit 2)

(* Every ordering name resolves through the heuristic registry, so --mode
   and --order accept laboratory heuristics (chb, frame, assump) next to
   the four built-ins. *)
let parse_mode mode_name =
  match Ordering.mode_of_name mode_name with
  | Some m -> m
  | None ->
    Format.eprintf "bmccheck: unknown ordering %S (available: %s)@." mode_name
      (String.concat "|" (Ordering.names ()));
    exit 2

let split_names s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun n -> n <> "")

let parse_weighting = function
  | "linear" -> Bmc.Score.Linear
  | "uniform" -> Bmc.Score.Uniform
  | "last" -> Bmc.Score.Last_only
  | w ->
    Format.eprintf "bmccheck: unknown weighting %S (linear|uniform|last)@." w;
    exit 2

let run_single source engine_name mode_name max_depth coi weighting_name verbose max_conflicts
    max_seconds simple_path fresh_solver ltl_formula inprocess core_min trace_file metrics
    ledger_file flight_file =
  let mode = parse_mode mode_name in
  let weighting = parse_weighting weighting_name in
  match load source with
  | Error msg ->
    Format.eprintf "bmccheck: %s@." msg;
    exit 2
  | Ok (netlist, property, case) ->
    let max_depth =
      match (max_depth, case) with
      | Some d, _ -> d
      | None, Some c -> c.Circuit.Generators.suggested_depth
      | None, None -> 20
    in
    let budget =
      { Sat.Solver.max_conflicts; max_propagations = None; max_seconds; stop = None }
    in
    let telemetry = setup_telemetry trace_file metrics ledger_file in
    let recorder = setup_recorder flight_file in
    let core_mode, coremin_budget = core_opts core_min in
    let config =
      Bmc.Engine.config ~mode ~weighting ~coi ~budget ~max_depth ?inprocess ~core_mode
        ~coremin_budget ~telemetry ?recorder ()
    in
    (* induction and LTL take the session policy directly; for the invariant
       engines the policy is the engine name (bmc = fresh, incremental =
       persistent) *)
    let policy = if fresh_solver then Bmc.Session.Fresh else Bmc.Session.Persistent in
    if inprocess <> None && (fresh_solver || (ltl_formula = None && engine_name = "bmc")) then
      Format.eprintf
        "bmccheck: note: --inprocess only acts on persistent sessions (use --engine \
         incremental, or drop --fresh-solver)@.";
    (match ltl_formula with
    | Some text ->
      let formula =
        try Bmc.Ltl.parse netlist text
        with Bmc.Ltl.Parse_error msg ->
          Format.eprintf "bmccheck: LTL syntax: %s@." msg;
          exit 2
      in
      let r = Bmc.Ltl.check ~config ~policy netlist formula in
      if verbose then
        List.iter (fun d -> Format.printf "%a@." pp_depth_stat d) r.per_depth;
      if inprocess <> None then pp_inprocess_summary source r.per_depth;
      (match r.verdict with
      | Bmc.Ltl.Falsified w ->
        Format.printf "%s: LTL property falsified at depth %d (%s)@." source w.depth
          (match w.loop_start with
          | Some l -> Printf.sprintf "lasso back to state %d" l
          | None -> "finite prefix");
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) w.trace;
        exit 10
      | Bmc.Ltl.Bounded_pass k ->
        Format.printf "%s: no LTL counterexample up to depth %d (%.3fs)@." source k
          r.total_time;
        exit 20
      | Bmc.Ltl.Aborted k ->
        Format.printf "%s: LTL check aborted at depth %d@." source k;
        exit 0)
    | None -> ());
    (match engine_name with
    | "bmc" | "incremental" -> ()
    | "interpolation" ->
      let r = Bmc.Interpolation.prove netlist ~property in
      Format.printf "%s: %a (%.3fs)@." source Bmc.Interpolation.pp_verdict r.verdict
        r.total_time;
      (match r.verdict with
      | Bmc.Interpolation.Falsified trace ->
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
        exit 10
      | Bmc.Interpolation.Proved _ -> exit 20
      | Bmc.Interpolation.Unknown _ -> exit 0)
    | "pdr" ->
      let r = Bmc.Pdr.prove netlist ~property in
      Format.printf "%s: %a (%.3fs, %d queries)@." source Bmc.Pdr.pp_verdict r.verdict
        r.total_time r.queries;
      (match r.verdict with
      | Bmc.Pdr.Falsified trace ->
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
        exit 10
      | Bmc.Pdr.Proved _ -> exit 20
      | Bmc.Pdr.Unknown _ -> exit 0)
    | "symbolic" ->
      let v = Bmc.Symbolic.check netlist ~property in
      Format.printf "%s: %a@." source Bmc.Symbolic.pp_verdict v;
      (match v with
      | Bmc.Symbolic.Fails_at _ -> exit 10
      | Bmc.Symbolic.Holds _ -> exit 20
      | Bmc.Symbolic.Blowup _ -> exit 0)
    | "abstraction" ->
      let r = Bmc.Abstraction.prove ~config netlist ~property in
      if verbose then
        List.iter
          (fun (round : Bmc.Abstraction.round) ->
            Format.printf "depth %3d: core regs=%-4d abstract=%s, %.3fs@." round.depth
              round.core_regs
              (match round.abstract_verdict with
              | Some v -> Format.asprintf "%a" Circuit.Reach.pp_verdict v
              | None -> "-")
              round.time)
          r.rounds;
      Format.printf "%s: %a (%.3fs)@." source Bmc.Abstraction.pp_verdict r.verdict
        r.total_time;
      (match r.verdict with
      | Bmc.Abstraction.Falsified trace ->
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
        exit 10
      | Bmc.Abstraction.Proved _ -> exit 20
      | Bmc.Abstraction.Unknown _ -> exit 0)
    | "induction" ->
      let r = Bmc.Induction.prove ~config ~policy ~simple_path netlist ~property in
      if verbose then
        List.iter
          (fun (d : Bmc.Induction.step_stat) ->
            Format.printf "depth %3d: base=%-7s step=%-7s dec=%d+%d, %.3fs@." d.depth
              (Format.asprintf "%a" Sat.Solver.pp_outcome d.base_outcome)
              (match d.step_outcome with
              | Some o -> Format.asprintf "%a" Sat.Solver.pp_outcome o
              | None -> "-")
              d.base_decisions d.step_decisions d.time)
          r.per_depth;
      Format.printf "%s: %a (%.3fs)@." source Bmc.Induction.pp_verdict r.verdict r.total_time;
      (match r.verdict with
      | Bmc.Induction.Falsified trace ->
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
        exit 10
      | Bmc.Induction.Proved _ -> exit 20
      | Bmc.Induction.Unknown _ -> exit 0)
    | other ->
      Format.eprintf
        "bmccheck: unknown engine %S (bmc|incremental|induction|symbolic|abstraction|pdr|interpolation)@."
        other;
      exit 2);
    let result =
      if engine_name = "incremental" then Bmc.Incremental.run ~config netlist ~property
      else Bmc.Engine.run ~config netlist ~property
    in
    if verbose then
      List.iter (fun d -> Format.printf "%a@." pp_depth_stat d) result.per_depth;
    if inprocess <> None then pp_inprocess_summary source result.per_depth;
    if core_min <> None then pp_coremin_summary source result.per_depth;
    Format.printf "%s: %a (%.3fs, %d decisions, %d implications)@." source
      Bmc.Engine.pp_verdict result.verdict result.total_time result.total_decisions
      result.total_implications;
    (match result.verdict with
    | Bmc.Engine.Falsified trace ->
      Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
      exit 10
    | Bmc.Engine.Bounded_pass _ -> exit 20
    | Bmc.Engine.Aborted _ -> exit 0)

(* --portfolio: race a roster of named orderings on a domain pool, one full
   BMC run.  The roster defaults to the paper's three; --order picks named
   registry heuristics instead, and --rotate arms adaptive rotation (losers
   that burn their per-racer budget are recycled onto the untried
   heuristics). *)
let run_portfolio source max_depth coi weighting_name verbose max_conflicts max_seconds
    inprocess core_min trace_file metrics ledger_file flight_file jobs share share_max_lbd
    order_names rotate =
  let weighting = parse_weighting weighting_name in
  match load source with
  | Error msg ->
    Format.eprintf "bmccheck: %s@." msg;
    exit 2
  | Ok (netlist, property, case) ->
    let max_depth =
      match (max_depth, case) with
      | Some d, _ -> d
      | None, Some c -> c.Circuit.Generators.suggested_depth
      | None, None -> 20
    in
    let budget =
      { Sat.Solver.max_conflicts; max_propagations = None; max_seconds; stop = None }
    in
    let telemetry = setup_telemetry trace_file metrics ledger_file in
    let recorder = setup_recorder flight_file in
    let core_mode, coremin_budget = core_opts core_min in
    let config =
      Bmc.Engine.config ~weighting ~coi ~budget ~max_depth ?inprocess ~core_mode
        ~coremin_budget ~telemetry ?recorder ()
    in
    (* Build the named-racer roster.  Rotation needs budget exhaustion to be
       observable, so --rotate gives every racer a per-instance conflict
       budget (the --max-conflicts value, or 4096) and queues up the
       registry heuristics not already racing. *)
    let roster_names =
      match order_names with Some ns -> ns | None -> [ "standard"; "static"; "dynamic" ]
    in
    let bases = [| 64; 100; 150; 200; 250; 300 |] in
    let racer_conflicts = if rotate then Some (Option.value max_conflicts ~default:4096) else None in
    let mk_racer i name =
      Portfolio.racer ~name ~restart_base:bases.(i mod Array.length bases)
        ?conflicts:racer_conflicts (parse_mode name)
    in
    let racers = List.mapi mk_racer roster_names in
    let rotation =
      if rotate then
        Ordering.names ()
        |> List.filter (fun n -> not (List.mem n roster_names))
        |> List.mapi (fun i n -> mk_racer (List.length roster_names + i) n)
      else []
    in
    let jobs = if jobs > 0 then jobs else List.length racers in
    if share_max_lbd < 1 then begin
      Format.eprintf "bmccheck: --share-max-lbd must be at least 1@.";
      exit 2
    end;
    let exchange =
      if share then
        Some
          (Share.Exchange.create
             ~config:{ Share.Exchange.default_config with Share.Exchange.max_lbd = share_max_lbd }
             ())
      else None
    in
    let code =
      Portfolio.Pool.with_pool ~telemetry ~jobs (fun pool ->
          let r =
            Portfolio.check_race ~config ~racers ~rotation ?share:exchange ~pool netlist
              ~property
          in
          if verbose then
            List.iter
              (fun (rs : Portfolio.race_stat) ->
                Format.printf "depth %3d: %-7s won by %-9s wall=%.3fs cancelled=%d%s@."
                  rs.Portfolio.depth
                  (Sat.Solver.outcome_string rs.stat.Bmc.Session.outcome)
                  (match rs.winner with Some n -> n | None -> "-")
                  rs.Portfolio.wall rs.Portfolio.cancelled
                  (if rs.Portfolio.rotated > 0 then
                     Printf.sprintf " rotated=%d" rs.Portfolio.rotated
                   else ""))
              r.per_depth;
          if core_min <> None then
            pp_coremin_summary source
              (List.map (fun (rs : Portfolio.race_stat) -> rs.Portfolio.stat) r.per_depth);
          Format.printf "%s: %a (%.3fs wall, %d workers%s, wins:%s)@." source
            Bmc.Session.pp_verdict r.verdict r.total_wall jobs
            (if r.rotated > 0 then Printf.sprintf ", %d rotations" r.rotated else "")
            (String.concat ""
               (List.map (fun (n, c) -> Printf.sprintf " %s=%d" n c) r.wins));
          (match exchange with
          | Some ex ->
            let st = Share.Exchange.stats ex in
            Format.printf
              "sharing: exported=%d imported=%d rejected_tainted=%d dropped_stale=%d \
               occupancy=%d/%d@."
              st.Share.Exchange.exported st.Share.Exchange.imported
              st.Share.Exchange.rejected_tainted st.Share.Exchange.dropped_stale
              st.Share.Exchange.occupancy st.Share.Exchange.capacity
          | None -> ());
          match r.verdict with
          | Bmc.Session.Falsified trace ->
            Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
            10
          | Bmc.Session.Bounded_pass _ -> 20
          | Bmc.Session.Aborted _ -> 0)
    in
    exit code

(* Several CIRCUITs: batch-solve the properties across the pool (mode B). *)
let run_batch sources engine_name mode_name max_depth coi weighting_name verbose
    max_conflicts max_seconds inprocess core_min trace_file metrics ledger_file flight_file
    jobs =
  let mode = parse_mode mode_name in
  let weighting = parse_weighting weighting_name in
  let policy =
    match engine_name with
    | "bmc" -> Bmc.Session.Fresh
    | "incremental" -> Bmc.Session.Persistent
    | other ->
      Format.eprintf "bmccheck: batch mode supports --engine bmc|incremental, not %S@." other;
      exit 2
  in
  let items =
    List.map
      (fun source ->
        match load source with
        | Error msg ->
          Format.eprintf "bmccheck: %s: %s@." source msg;
          exit 2
        | Ok (netlist, property, case) ->
          let depth =
            match (max_depth, case) with
            | Some d, _ -> d
            | None, Some c -> c.Circuit.Generators.suggested_depth
            | None, None -> 20
          in
          (source, netlist, property, depth))
      sources
  in
  let budget =
    { Sat.Solver.max_conflicts; max_propagations = None; max_seconds; stop = None }
  in
  let telemetry = setup_telemetry trace_file metrics ledger_file in
  let recorder = setup_recorder flight_file in
  let core_mode, coremin_budget = core_opts core_min in
  let jobs =
    if jobs > 0 then jobs else min (List.length items) (Domain.recommended_domain_count ())
  in
  let t0 = Portfolio.Pool.wall () in
  let results =
    Portfolio.Pool.with_pool ~telemetry ~jobs (fun pool ->
        Portfolio.Pool.map_list ~label:"batch" pool
          (fun (source, netlist, property, max_depth) ->
            let config =
              Bmc.Engine.config ~mode ~weighting ~coi ~budget ~max_depth ?inprocess
                ~core_mode ~coremin_budget ~telemetry ?recorder ()
            in
            (source, netlist, Bmc.Session.check ~config ~policy netlist ~property))
          items)
  in
  let wall = Portfolio.Pool.wall () -. t0 in
  let code = ref 20 in
  List.iter
    (fun (source, netlist, (r : Bmc.Session.result)) ->
      if verbose then List.iter (fun d -> Format.printf "%a@." pp_depth_stat d) r.per_depth;
      if core_min <> None then pp_coremin_summary source r.per_depth;
      Format.printf "%s: %a (%.3fs, %d decisions)@." source Bmc.Session.pp_verdict r.verdict
        r.total_time r.total_decisions;
      match r.verdict with
      | Bmc.Session.Falsified trace ->
        Format.printf "%a@." (Bmc.Trace.pp ~netlist ()) trace;
        code := 10
      | Bmc.Session.Bounded_pass _ -> ()
      | Bmc.Session.Aborted _ -> if !code <> 10 then code := 0)
    results;
  Format.printf "batch: %d properties on %d workers in %.3fs wall@." (List.length results)
    jobs wall;
  exit !code

let run sources engine_name mode_name max_depth coi weighting_name verbose max_conflicts
    max_seconds simple_path fresh_solver ltl_formula inprocess_spec core_min trace_file
    metrics ledger_file flight_file jobs portfolio share share_max_lbd order rotate =
  let inprocess = parse_inprocess inprocess_spec in
  if share && not portfolio then begin
    Format.eprintf "bmccheck: --share requires --portfolio (clause exchange races)@.";
    exit 2
  end;
  if rotate && not portfolio then begin
    Format.eprintf "bmccheck: --rotate requires --portfolio (racer rotation)@.";
    exit 2
  end;
  let order_names =
    match Option.map split_names order with
    | Some [] ->
      Format.eprintf "bmccheck: --order needs at least one heuristic name@.";
      exit 2
    | o -> o
  in
  (* without --portfolio a single --order name is a synonym for --mode *)
  let mode_name =
    match (order_names, portfolio) with
    | Some [ n ], false -> n
    | Some (_ :: _ :: _), false ->
      Format.eprintf "bmccheck: racing several orderings needs --portfolio@.";
      exit 2
    | _ -> mode_name
  in
  match (sources, portfolio) with
  | [], _ -> assert false (* cmdliner: the positional list is non-empty *)
  | _ :: _ :: _, true ->
    Format.eprintf "bmccheck: --portfolio races one circuit; give a single CIRCUIT@.";
    exit 2
  | [ source ], true ->
    if ltl_formula <> None then begin
      Format.eprintf "bmccheck: --portfolio checks the built-in invariant, not --ltl@.";
      exit 2
    end;
    run_portfolio source max_depth coi weighting_name verbose max_conflicts max_seconds
      inprocess core_min trace_file metrics ledger_file flight_file jobs share share_max_lbd
      order_names rotate
  | [ source ], false ->
    run_single source engine_name mode_name max_depth coi weighting_name verbose
      max_conflicts max_seconds simple_path fresh_solver ltl_formula inprocess core_min
      trace_file metrics ledger_file flight_file
  | sources, false ->
    if ltl_formula <> None then begin
      Format.eprintf "bmccheck: batch mode checks built-in invariants, not --ltl@.";
      exit 2
    end;
    run_batch sources engine_name mode_name max_depth coi weighting_name verbose
      max_conflicts max_seconds inprocess core_min trace_file metrics ledger_file flight_file
      jobs

open Cmdliner

let sources =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"CIRCUIT"
        ~doc:"A .rnl netlist file, an AIGER file or a built-in benchmark name.  With \
              several circuits, their properties are batch-solved across the worker \
              pool (see --jobs).")

let engine =
  Arg.(
    value & opt string "bmc"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Checking engine: bmc (one solver per depth), incremental (one \
              persistent solver), induction (k-induction proof), symbolic \
              (BDD reachability), abstraction (core-guided proof), pdr \
              (IC3), or interpolation (McMillan 2003).")

let mode =
  Arg.(
    value & opt string "dynamic"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Decision ordering: any registered heuristic — standard, static, dynamic, \
              shtrichman, or a laboratory heuristic (chb, frame, assump).")

let ltl =
  Arg.(
    value
    & opt (some string) None
    & info [ "ltl" ] ~docv:"FORMULA"
        ~doc:"Check this LTL property instead of the built-in invariant, e.g. \
              'G (req -> F grant)'.  Signal names resolve in the netlist.")

let simple_path =
  Arg.(
    value & flag
    & info [ "simple-path" ]
        ~doc:"With --engine induction: add pairwise state-disequality constraints.")

let fresh_solver =
  Arg.(
    value & flag
    & info [ "fresh-solver" ]
        ~doc:"With --engine induction or --ltl: rebuild a fresh solver per depth (the \
              classic substrate) instead of running on persistent incremental sessions.")

let max_depth =
  Arg.(value & opt (some int) None & info [ "depth"; "k" ] ~docv:"K" ~doc:"Maximum unrolling depth.")

let coi = Arg.(value & flag & info [ "coi" ] ~doc:"Encode only the property's cone of influence.")

let weighting =
  Arg.(
    value & opt string "linear"
    & info [ "weighting" ] ~docv:"W" ~doc:"Core weighting: linear, uniform or last.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-depth statistics.")

let max_conflicts =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conflicts" ] ~docv:"N" ~doc:"Per-instance conflict budget.")

let max_seconds =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC" ~doc:"Per-instance CPU-second budget.")

let inprocess =
  Arg.(
    value
    & opt ~vopt:(Some "default") (some string) None
    & info [ "inprocess" ] ~docv:"BUDGET"
        ~doc:"Run proof-aware inprocessing (failed-literal probing, subsumption, \
              self-subsuming resolution, bounded variable elimination) inside the \
              persistent solver at every depth boundary.  Outcomes, unsat cores and \
              certificates are unchanged; the retired instance's satisfied clauses and \
              dead auxiliaries are swept before the next depth's deltas load.  $(docv) is \
              a preset (default | light | aggressive) or comma-separated \
              occ=/growth=/probes=/rounds=/ms= overrides (e.g. 'occ=16,probes=256').  \
              Requires a persistent session (--engine incremental, --portfolio, batch \
              incremental, or --ltl / --engine induction without --fresh-solver).")

let core_min =
  Arg.(
    value
    & opt ~vopt:(Some (-1)) (some int) None
    & info [ "core-min" ] ~docv:"N"
        ~doc:"Destructively minimise every UNSAT instance's unsatisfiable core before it \
              refines the decision ranking: each core clause is re-solved under a selector \
              assumption and dropped if redundant, and the minimised core is re-proved and \
              certified by the independent checker (uncertified results fall back to the \
              raw core).  With a value, spend at most $(docv) minimisation solver calls \
              per depth; without one, run each core to minimality.  Works with every \
              session-based engine, --portfolio and batches.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL telemetry trace to $(docv): per-depth summaries (with \
              rank-vs-VSIDS decision attribution and core churn), solver phase spans (BCP, \
              conflict analysis, clause deletion, CDG bookkeeping), restarts, and \
              per-solve decisions.rank / decisions.vsids counters.  Feed the file to \
              bmcprof trace to rebuild the run ledger from it.")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect telemetry in memory and print a phase-breakdown report (span times, \
              counters, per-depth build/solve/CDG table) when the run finishes.")

let ledger_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"Write the structured run ledger (bmc-ledger/v1 JSON) to $(docv) when the run \
              finishes: per-depth decision/conflict work with rank-vs-VSIDS attribution, \
              core-variable churn, racer wins and clause-sharing flow.  Analyse it with \
              bmcprof report / diff / prom.")

let flight_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-recorder" ] ~docv:"FILE"
        ~doc:"Keep a bounded in-memory flight recording (restarts, GC, ordering switches, \
              depth transitions, racer starts/wins/cancels, clause sharing) and dump it to \
              $(docv) as JSONL at exit — or on SIGUSR1, to inspect a wedged run.  Render \
              it with bmcprof timeline.")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for --portfolio or batch solving.  0 (the default) picks 3 \
              for a portfolio race (one per ordering) and min(circuits, cores) for a \
              batch.")

let portfolio =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:"Race a roster of decision orderings (default: standard, static, dynamic; \
              override with --order) on parallel workers; per depth, the first definitive \
              answer wins, the losers are cancelled, and the winner's unsat core refines \
              the shared ranking.")

let order =
  Arg.(
    value
    & opt (some string) None
    & info [ "order" ] ~docv:"NAME[,NAME...]"
        ~doc:"Decision ordering(s) from the heuristic registry (standard, static, \
              dynamic, shtrichman, chb, frame, assump).  One name without --portfolio is \
              a synonym for --mode; with --portfolio the comma-separated list is the \
              racing roster, one named racer per heuristic.")

let rotate =
  Arg.(
    value & flag
    & info [ "rotate" ]
        ~doc:"With --portfolio: adaptive racer rotation.  Every racer gets a per-instance \
              conflict budget (--max-conflicts, or 4096), and a losing racer that burns \
              it is recycled onto the next registry heuristic not yet racing.  Rotations \
              are counted in the race telemetry and the ledger's race rows.")

let share =
  Arg.(
    value & flag
    & info [ "share" ]
        ~doc:"With --portfolio: exchange short learnt clauses between the racers.  \
              Untainted clauses under the size/LBD caps are published to a lock-free \
              ring; siblings import them at restart boundaries.  Prints the exchange \
              counters (exported, imported, rejected_tainted, dropped_stale) after the \
              run.")

let share_max_lbd =
  Arg.(
    value & opt int 4
    & info [ "share-max-lbd" ] ~docv:"N"
        ~doc:"With --share: only clauses whose literal-block distance is at most $(docv) \
              are exported (default 4).")

let cmd =
  let doc = "bounded model checking with refined SAT decision orderings" in
  let info = Cmd.info "bmccheck" ~doc in
  Cmd.v info
    Term.(
      const run $ sources $ engine $ mode $ max_depth $ coi $ weighting $ verbose
      $ max_conflicts $ max_seconds $ simple_path $ fresh_solver $ ltl $ inprocess
      $ core_min $ trace_file $ metrics $ ledger_file $ flight_file $ jobs $ portfolio
      $ share $ share_max_lbd $ order $ rotate)

let () = exit (Cmd.eval cmd)
