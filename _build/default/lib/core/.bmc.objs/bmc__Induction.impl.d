lib/core/induction.ml: Circuit Engine Format List Sat Score Shtrichman Sys Trace Unroll Varmap
