(** AIGER and-inverter-graph format (ASCII [aag] and binary [aig]).

    The interchange format of the Hardware Model Checking Competition; this
    module bridges it with {!Netlist}, so published AIGER circuits can be
    model-checked with the BMC engine and generated benchmarks exported.

    Reading: inputs become {!Netlist.input}s, latches become registers
    (honouring the AIGER 1.9 optional reset field — 0, 1 or nondeterministic),
    and-gates become {!Netlist.and_} over possibly negated operands.  The
    invariant property returned is ¬(bad₀ ∨ bad₁ ∨ ...) built from the [b]
    lines, falling back to the first output for AIGER 1.0 files that encode
    the bad state as an output.

    Writing: the netlist's OR / XOR / MUX gates are lowered to
    and-inverter form; the property is emitted as a single bad-state
    literal.  Latches with non-zero or nondeterministic initial values use
    the AIGER 1.9 reset field. *)

exception Parse_error of string

val parse_string : string -> Netlist.t * Netlist.node
(** Auto-detects [aag] (ASCII) vs [aig] (binary) from the header.
    Returns the netlist and the invariant property node.
    @raise Parse_error on malformed input or if there is neither a bad line
    nor an output to serve as the property. *)

val parse_file : string -> Netlist.t * Netlist.node

val to_ascii : Netlist.t -> property:Netlist.node -> string
(** Serialise in [aag] form. *)

val to_binary : Netlist.t -> property:Netlist.node -> string
(** Serialise in [aig] (binary) form. *)

val write_file : string -> Netlist.t -> property:Netlist.node -> unit
(** Chooses the encoding from the file extension: [.aag] → ASCII, anything
    else → binary. *)
