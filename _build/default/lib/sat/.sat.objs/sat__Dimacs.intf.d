lib/sat/dimacs.mli: Cnf Format
