(* Luby restart sequence. *)

let test_first_terms () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  List.iteri
    (fun i e ->
      Alcotest.(check int) (Printf.sprintf "term %d" (i + 1)) e (Sat.Luby.term (i + 1)))
    expected

let test_powers () =
  (* term (2^k - 1) = 2^(k-1) *)
  for k = 1 to 10 do
    Alcotest.(check int)
      (Printf.sprintf "term (2^%d - 1)" k)
      (1 lsl (k - 1))
      (Sat.Luby.term ((1 lsl k) - 1))
  done

let test_generator () =
  let g = Sat.Luby.create ~base:100 in
  Alcotest.(check int) "1st" 100 (Sat.Luby.next g);
  Alcotest.(check int) "2nd" 100 (Sat.Luby.next g);
  Alcotest.(check int) "3rd" 200 (Sat.Luby.next g);
  Alcotest.(check int) "4th" 100 (Sat.Luby.next g)

let test_invalid () =
  Alcotest.check_raises "term 0" (Invalid_argument "Luby.term") (fun () ->
      ignore (Sat.Luby.term 0));
  Alcotest.check_raises "base 0" (Invalid_argument "Luby.create") (fun () ->
      ignore (Sat.Luby.create ~base:0))

let prop_power_of_two =
  QCheck.Test.make ~name:"every term is a power of two" ~count:300
    QCheck.(int_range 1 5000)
    (fun i ->
      let t = Sat.Luby.term i in
      t > 0 && t land (t - 1) = 0)

let tests =
  [
    Alcotest.test_case "first terms" `Quick test_first_terms;
    Alcotest.test_case "powers" `Quick test_powers;
    Alcotest.test_case "generator" `Quick test_generator;
    Alcotest.test_case "invalid" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_power_of_two;
  ]
