type t = int

type var = int

let make v positive =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (v * 2) + if positive then 0 else 1

let pos v = make v true

let neg v = make v false

let var l = l lsr 1

let is_pos l = l land 1 = 0

let negate l = l lxor 1

let to_index l = l

let of_index i =
  if i < 0 then invalid_arg "Lit.of_index: negative index";
  i

let to_dimacs l =
  let v = var l + 1 in
  if is_pos l then v else -v

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero";
  if n > 0 then pos (n - 1) else neg (-n - 1)

let equal = Int.equal

let compare = Int.compare

let hash l = l

let pp ppf l = Format.pp_print_int ppf (to_dimacs l)
